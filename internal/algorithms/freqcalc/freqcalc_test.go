package freqcalc

import (
	"math/rand"
	"testing"

	"anonnet/internal/algorithms/minbase"
	"anonnet/internal/dynamic"
	"anonnet/internal/engine"
	"anonnet/internal/fibration"
	"anonnet/internal/funcs"
	"anonnet/internal/graph"
	"anonnet/internal/model"
	"anonnet/internal/multiset"
	"anonnet/internal/testutil"
)

func TestSolveOutdegreeKnownSystems(t *testing.T) {
	// Star base: center fibre z=1, leaf fibre z=4 (Star(5)): center out
	// b0 = 5 (self + 4 leaves), leaves out b1 = 2 (self + center). Base
	// edge counts are in-edges per member: d00=1 (self), d01=1 (each leaf
	// hears the center once), d10=4 (the center hears 4 leaves), d11=1.
	// M = [[-4, 1], [4, -1]]: kernel spanned by (1, 4).
	b := &minbase.Base{
		Values: []float64{9, 4},
		Leader: []bool{false, false},
		Out:    []int{5, 2},
		D:      [][]int{{1, 1}, {4, 1}},
	}
	z, err := SolveOutdegree(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(z) != 2 || z[0] != 1 || z[1] != 4 {
		t.Fatalf("z = %v, want [1 4]", z)
	}
}

func TestSolveOutdegreeRejectsRankDeficient(t *testing.T) {
	// An all-zero M has a 2-dimensional kernel for m = 2.
	b := &minbase.Base{
		Values: []float64{1, 2},
		Leader: []bool{false, false},
		Out:    []int{1, 1},
		D:      [][]int{{1, 0}, {0, 1}},
	}
	if _, err := SolveOutdegree(b); err == nil {
		t.Fatal("rank-deficient system accepted")
	}
}

func TestSolvePorts(t *testing.T) {
	good := &minbase.Base{
		Values: []float64{1, 2},
		Leader: []bool{false, false},
		Out:    []int{2, 2},
		D:      [][]int{{1, 1}, {1, 1}},
	}
	z, err := SolvePorts(good)
	if err != nil {
		t.Fatal(err)
	}
	if z[0] != 1 || z[1] != 1 {
		t.Fatalf("z = %v, want [1 1]", z)
	}
	bad := &minbase.Base{
		Values: []float64{1, 2},
		Leader: []bool{false, false},
		Out:    []int{3, 2},
		D:      [][]int{{1, 1}, {1, 1}},
	}
	if _, err := SolvePorts(bad); err == nil {
		t.Fatal("non-covering accepted")
	}
}

func TestSolveSymmetric(t *testing.T) {
	// Star base again, as a symmetric quotient: d01·z1 = d10·z0 … with
	// d01 = 1 (one center→leaf base edge), d10 = 1: z = (1, 1)?? No: the
	// star's quotient has d01 = 1, d10 = 4? — the leaf class has 4 members
	// each with one edge to the center, so the center has 4 in-edges from
	// the leaf class: d10 = 4, d01 = 1 and z1/z0 = d01… eq. (4):
	// d01·z1 = d10·z0 ⟹ z1 = 4·z0.
	b := &minbase.Base{
		Values: []float64{9, 4},
		Leader: []bool{false, false},
		Out:    []int{5, 2},
		D:      [][]int{{1, 1}, {4, 1}},
	}
	z, err := SolveSymmetric(b)
	if err != nil {
		t.Fatal(err)
	}
	if z[0] != 1 || z[1] != 4 {
		t.Fatalf("z = %v, want [1 4]", z)
	}
}

func TestSolveSymmetricRejectsAsymmetricSupport(t *testing.T) {
	b := &minbase.Base{
		Values: []float64{1, 2},
		Leader: []bool{false, false},
		Out:    []int{2, 1},
		D:      [][]int{{1, 1}, {0, 1}},
	}
	if _, err := SolveSymmetric(b); err == nil {
		t.Fatal("asymmetric support accepted")
	}
}

func TestSolveSymmetricDetectsImbalance(t *testing.T) {
	// A triangle of ratios that cannot be consistent: z1 = 2·z0,
	// z2 = 2·z1 = 4·z0, but the 0—2 edge demands z2 = z0.
	b := &minbase.Base{
		Values: []float64{1, 2, 3},
		Leader: []bool{false, false, false},
		Out:    []int{3, 3, 3},
		D: [][]int{
			{1, 1, 1},
			{2, 1, 1},
			{1, 2, 1},
		},
	}
	if _, err := SolveSymmetric(b); err == nil {
		t.Fatal("detailed-balance violation accepted")
	}
}

// --- end-to-end Theorem 4.1 ---

type workload struct {
	name   string
	g      *graph.Graph
	inputs []model.Input
	sym    bool
}

func workloads() []workload {
	rng := rand.New(rand.NewSource(17))
	return []workload{
		{"alt-ring", graph.Ring(6), testutil.Inputs(1, 2, 1, 2, 1, 2), false},
		{"bidi-ring", graph.BidirectionalRing(6), testutil.Inputs(1, 2, 1, 2, 1, 2), true},
		{"star", graph.Star(5), testutil.Inputs(9, 4, 4, 4, 4), true},
		{"path", graph.Path(4), testutil.Inputs(1, 2, 2, 1), true},
		{"hypercube", graph.Hypercube(3), testutil.Inputs(5, 5, 5, 5, 5, 5, 5, 5), true},
		{"random-digraph", graph.RandomStronglyConnected(7, 6, rng), testutil.Inputs(1, 5, 5, 2, 1, 5, 2), false},
		{"random-sym", graph.RandomSymmetricConnected(7, 4, rng), testutil.Inputs(4, 4, 1, 1, 4, 4, 1), true},
		{"distinct", graph.Ring(4), testutil.Inputs(1, 2, 3, 4), false},
	}
}

func average(inputs []model.Input) float64 {
	s := 0.0
	for _, in := range inputs {
		s += in.Value
	}
	return s / float64(len(inputs))
}

func rounds(g *graph.Graph) int { return 3*g.N() + 4*g.Diameter() + 12 }

func TestTheorem41AverageAllModels(t *testing.T) {
	for _, w := range workloads() {
		for _, kind := range testutil.CapableKinds() {
			if kind == model.Symmetric && !w.sym {
				continue
			}
			factory, err := NewFactory(kind, funcs.Average(), None)
			if err != nil {
				t.Fatal(err)
			}
			e := testutil.RunStatic(t, w.g, kind, w.inputs, factory, rounds(w.g), 1)
			testutil.AllOutputsNear(t, e.Outputs(), average(w.inputs), 1e-9, w.name+"/"+kind.String())
		}
	}
}

func TestTheorem41FrequencyBasedCatalog(t *testing.T) {
	w := workload{"alt-ring", graph.Ring(6), testutil.Inputs(1, 2, 1, 2, 2, 1), false}
	for _, f := range []funcs.Func{funcs.Mode(), funcs.Median(), funcs.FrequencyOf(2), funcs.ThresholdFreq(2, 0.4)} {
		factory, err := NewFactory(model.OutdegreeAware, f, None)
		if err != nil {
			t.Fatal(err)
		}
		want := f.Eval(multisetOf(w.inputs))
		e := testutil.RunStatic(t, w.g, model.OutdegreeAware, w.inputs, factory, rounds(w.g), 2)
		testutil.AllOutputsNear(t, e.Outputs(), want, 1e-9, f.Name)
	}
}

func multisetOf(inputs []model.Input) *funcs.Args {
	m := multiset.New[float64]()
	for _, in := range inputs {
		m.Add(in.Value)
	}
	return m
}

func TestRejectsMultisetBasedWithoutHelp(t *testing.T) {
	if _, err := NewFactory(model.OutdegreeAware, funcs.Sum(), None); err == nil {
		t.Fatal("sum accepted without help — Theorem 4.1 forbids it")
	}
	if _, err := NewFactory(model.SimpleBroadcast, funcs.Average(), None); err == nil {
		t.Fatal("minbase factory accepted the broadcast model")
	}
}

func TestCorollary43SumWithKnownSize(t *testing.T) {
	for _, w := range workloads() {
		n := len(w.inputs)
		factory, err := NewFactory(model.OutdegreeAware, funcs.Sum(), Help{KnownN: n})
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for _, in := range w.inputs {
			want += in.Value
		}
		e := testutil.RunStatic(t, w.g, model.OutdegreeAware, w.inputs, factory, rounds(w.g), 3)
		testutil.AllOutputsNear(t, e.Outputs(), want, 1e-9, w.name+"/sum")
	}
}

func TestCorollary43CountWithKnownSize(t *testing.T) {
	w := workloads()[0]
	n := len(w.inputs)
	factory, err := NewFactory(model.OutdegreeAware, funcs.Count(), Help{KnownN: n})
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunStatic(t, w.g, model.OutdegreeAware, w.inputs, factory, rounds(w.g), 4)
	testutil.AllOutputsNear(t, e.Outputs(), float64(n), 1e-9, "count")
}

func TestCorollary44LeaderMultiset(t *testing.T) {
	// One leader on various graphs: sum and count become computable.
	for _, w := range workloads() {
		inputs := testutil.WithLeaders(w.inputs, 0)
		factory, err := NewFactory(model.OutdegreeAware, funcs.Sum(), Help{Leaders: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for _, in := range inputs {
			want += in.Value
		}
		e := testutil.RunStatic(t, w.g, model.OutdegreeAware, inputs, factory, rounds(w.g), 5)
		testutil.AllOutputsNear(t, e.Outputs(), want, 1e-9, w.name+"/leader-sum")
	}
}

func TestMultipleLeaders(t *testing.T) {
	// ℓ = 2 known leaders (eq. (5)).
	g := graph.BidirectionalRing(6)
	inputs := testutil.WithLeaders(testutil.Inputs(1, 2, 1, 2, 1, 2), 0, 3)
	factory, err := NewFactory(model.OutdegreeAware, funcs.Count(), Help{Leaders: 2})
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunStatic(t, g, model.OutdegreeAware, inputs, factory, rounds(g), 6)
	testutil.AllOutputsNear(t, e.Outputs(), 6, 1e-9, "two-leader count")
}

func TestFrequencyInvarianceAcrossScaledNetworks(t *testing.T) {
	// The same frequency function on R_6 and R_9 (inputs 1,2,2 repeated):
	// a frequency-based output must be identical — the positive face of
	// the §4.1 impossibility.
	factory, err := NewFactory(model.OutdegreeAware, funcs.Average(), None)
	if err != nil {
		t.Fatal(err)
	}
	run := func(n int) float64 {
		inputs := make([]model.Input, n)
		for i := range inputs {
			inputs[i] = model.Input{Value: []float64{1, 2, 2}[i%3]}
		}
		g := graph.Ring(n)
		e := testutil.RunStatic(t, g, model.OutdegreeAware, inputs, factory, rounds(g), 7)
		return e.Outputs()[0].(float64)
	}
	if a, b := run(6), run(9); a != b {
		t.Fatalf("frequency-equivalent inputs gave different outputs: %v vs %v", a, b)
	}
}

func TestAsyncStartsEventuallyCorrect(t *testing.T) {
	g := graph.Ring(6)
	inputs := testutil.Inputs(1, 2, 1, 2, 1, 2)
	factory, err := NewFactory(model.OutdegreeAware, funcs.Average(), None)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(engine.Config{
		Schedule: dynamic.NewStatic(g),
		Kind:     model.OutdegreeAware,
		Inputs:   inputs,
		Factory:  factory,
		Starts:   []int{1, 5, 2, 8, 1, 3},
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 80; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	testutil.AllOutputsNear(t, e.Outputs(), 1.5, 1e-9, "async average")
}

func TestSelfStabilizationRecovery(t *testing.T) {
	g := graph.BidirectionalRing(6)
	inputs := testutil.Inputs(1, 2, 1, 2, 1, 2)
	factory, err := NewFactory(model.OutdegreeAware, funcs.Average(), None)
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunStatic(t, g, model.OutdegreeAware, inputs, factory, 40, 12)
	e.Corrupt(424242)
	for r := 0; r < 80; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	testutil.AllOutputsNear(t, e.Outputs(), 1.5, 1e-9, "post-corruption average")
}

func TestCoveredNetworkSameOutput(t *testing.T) {
	// A 3-fold cover of a labelled base computes the same value as the
	// base: fibre structure is invisible to frequency-based functions.
	rng := rand.New(rand.NewSource(33))
	base := graph.RandomStronglyConnected(4, 3, rng)
	fibb, err := fibration.LiftCover(base, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	baseInputs := testutil.Inputs(1, 2, 2, 4)
	totalInputs := make([]model.Input, fibb.Total.N())
	for v, bv := range fibb.VertexMap {
		totalInputs[v] = baseInputs[bv]
	}
	factory, err := NewFactory(model.OutdegreeAware, funcs.Average(), None)
	if err != nil {
		t.Fatal(err)
	}
	eBase := testutil.RunStatic(t, base, model.OutdegreeAware, baseInputs, factory, rounds(base)+10, 13)
	eTotal := testutil.RunStatic(t, fibb.Total, model.OutdegreeAware, totalInputs, factory, rounds(fibb.Total)+10, 14)
	want := average(baseInputs)
	testutil.AllOutputsNear(t, eBase.Outputs(), want, 1e-9, "base")
	testutil.AllOutputsNear(t, eTotal.Outputs(), want, 1e-9, "cover")
}

func TestKernelRecoversTrueCardinalitiesRandomized(t *testing.T) {
	// Property (eq. (2)): on random valued digraphs, the coprime kernel
	// vector z of the reference base is proportional to the true fibre
	// cardinalities: |φ⁻¹(i)| = k·z_i for a single positive integer k.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(8)
		g := graph.RandomStronglyConnected(n, rng.Intn(2*n), rng)
		inputs := make([]model.Input, n)
		for i := range inputs {
			inputs[i] = model.Input{Value: float64(rng.Intn(2))}
		}
		base, fib, err := minbase.BaseOfGraph(g, inputs)
		if err != nil {
			t.Fatal(err)
		}
		z, err := SolveOutdegree(base)
		if err != nil {
			t.Fatalf("trial %d: solve: %v (base %v)", trial, err, base)
		}
		cards := fib.FibreCardinalities()
		if cards[0]%z[0] != 0 {
			t.Fatalf("trial %d: z₀=%d does not divide |fibre₀|=%d", trial, z[0], cards[0])
		}
		k := cards[0] / z[0]
		for i := range z {
			if cards[i] != k*z[i] {
				t.Fatalf("trial %d: eq. (2) fails: cards=%v, z=%v, k=%d", trial, cards, z, k)
			}
		}
	}
}

func TestSymmetricSolverAgreesWithGaussianRandomized(t *testing.T) {
	// On random symmetric networks the eq. (4) spanning-tree solution and
	// the eq. (1) Gaussian solution must coincide — the paper presents them
	// as interchangeable routes to the same cardinalities.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(8)
		g := graph.RandomSymmetricConnected(n, rng.Intn(n), rng)
		inputs := make([]model.Input, n)
		for i := range inputs {
			inputs[i] = model.Input{Value: float64(rng.Intn(2))}
		}
		base, _, err := minbase.BaseOfGraph(g, inputs)
		if err != nil {
			t.Fatal(err)
		}
		zg, err := SolveOutdegree(base)
		if err != nil {
			t.Fatalf("trial %d: gaussian: %v", trial, err)
		}
		zs, err := SolveSymmetric(base)
		if err != nil {
			t.Fatalf("trial %d: symmetric: %v (base %v)", trial, err, base)
		}
		for i := range zg {
			if zg[i] != zs[i] {
				t.Fatalf("trial %d: solvers disagree: gaussian %v vs symmetric %v", trial, zg, zs)
			}
		}
	}
}

func TestCorollary42FiniteStateWithBound(t *testing.T) {
	// With a bound known (RowBound), the pipeline uses the finite-state
	// minimum-base variant: same exact answer, state frozen after
	// stabilization.
	g := graph.BidirectionalRing(6)
	inputs := testutil.Inputs(1, 2, 1, 2, 1, 2)
	factory, err := NewFactory(model.OutdegreeAware, funcs.Average(), Help{BoundN: 8})
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunStatic(t, g, model.OutdegreeAware, inputs, factory, 150, 15)
	testutil.AllOutputsNear(t, e.Outputs(), 1.5, 1e-9, "bounded average")
	for i := 0; i < e.N(); i++ {
		mb, ok := e.Agent(i).(*Agent).Minbase().(*minbase.BoundedAgent)
		if !ok {
			t.Fatalf("agent %d does not use the bounded automaton", i)
		}
		if !mb.Frozen() {
			t.Fatalf("agent %d not frozen after 150 rounds", i)
		}
	}
}

func TestHelpValidation(t *testing.T) {
	for _, h := range []Help{{BoundN: -1}, {KnownN: -2}, {Leaders: -3}} {
		if _, err := NewFactory(model.OutdegreeAware, funcs.Average(), h); err == nil {
			t.Errorf("negative help %+v accepted", h)
		}
	}
}
