package freqcalc

import (
	"math/rand"
	"testing"

	"anonnet/internal/funcs"
	"anonnet/internal/graph"
	"anonnet/internal/model"
	"anonnet/internal/testutil"
)

// TestScaleRing20 exercises the full §4.2 pipeline at a larger size; the
// repro band predicts laptop-scale pure-algorithm builds fully work.
func TestScaleRing20(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	n := 20
	g := graph.BidirectionalRing(n)
	vals := make([]float64, n)
	want := 0.0
	for i := range vals {
		vals[i] = float64(i % 5)
		want += vals[i]
	}
	want /= float64(n)
	factory, err := NewFactory(model.OutdegreeAware, funcs.Average(), None)
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunStatic(t, g, model.OutdegreeAware, testutil.Inputs(vals...), factory, 3*n, 30)
	testutil.AllOutputsNear(t, e.Outputs(), want, 1e-9, "ring-20 average")
}

// TestScaleRandom24WithLeader runs the leader multiset recovery at n = 24
// on a random digraph.
func TestScaleRandom24WithLeader(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	n := 24
	g := graph.RandomStronglyConnected(n, 2*n, rand.New(rand.NewSource(31)))
	inputs := make([]model.Input, n)
	want := 0.0
	for i := range inputs {
		inputs[i] = model.Input{Value: float64(i % 3)}
		want += inputs[i].Value
	}
	inputs[0].Leader = true
	factory, err := NewFactory(model.OutdegreeAware, funcs.Sum(), Help{Leaders: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunStatic(t, g, model.OutdegreeAware, inputs, factory, 3*n, 32)
	testutil.AllOutputsNear(t, e.Outputs(), want, 1e-9, "random-24 leader sum")
}
