// Package freqcalc implements the positive half of Theorem 4.1 and its
// corollaries: computing any frequency-based function in a static strongly
// connected anonymous network with outdegree awareness, output port
// awareness, or symmetric communications — and any multiset-based function
// when the network size is known (Cor. 4.3) or leaders are present
// (Cor. 4.4).
//
// The algorithm layers the §4.2 pipeline on the distributed minimum-base
// agent of package minbase: from the candidate base B_{w,b}, each agent
// recovers the fibre cardinalities up to a common factor — the positive
// coprime integer vector z with ker M = ℝz — and outputs f evaluated on the
// reconstructed value multiset.
package freqcalc

import (
	"fmt"

	"anonnet/internal/algorithms/minbase"
	"anonnet/internal/model"
	"anonnet/internal/rational"
)

// SolveOutdegree solves the linear system M z = 0 of §4.2 for the general
// outdegree-aware case: M_{i,j} = d_{i,j} for i ≠ j and M_{i,i} = d_{i,i} −
// b_i, by exact Gaussian elimination. The paper's Perron–Frobenius argument
// shows ker M is one-dimensional and spanned by a positive vector when the
// base is genuine; a kernel of any other shape marks the candidate as
// spurious and is reported as an error.
func SolveOutdegree(b *minbase.Base) ([]int, error) {
	m := b.N()
	grid := make([][]int, m)
	for i := 0; i < m; i++ {
		grid[i] = make([]int, m)
		for j := 0; j < m; j++ {
			grid[i][j] = b.D[i][j]
		}
		if b.Out[i] < 0 {
			return nil, fmt.Errorf("freqcalc: base vertex %d has unknown outdegree", i)
		}
		grid[i][i] -= b.Out[i]
	}
	z, err := rational.FromInts(grid).IntegerKernelVector()
	if err != nil {
		return nil, fmt.Errorf("freqcalc: outdegree system: %w", err)
	}
	return z, nil
}

// SolvePorts returns the fibre cardinalities for the output-port-aware
// case: every fibration is a covering, so all fibres have the same
// cardinality (eq. (3)) and z = (1, …, 1). The covering identity
// b_i = Σ_j d_{i,j} is verified to reject spurious candidates.
func SolvePorts(b *minbase.Base) ([]int, error) {
	z := make([]int, b.N())
	for i := range z {
		z[i] = 1
		sum := 0
		for j := range b.D[i] {
			sum += b.D[i][j]
		}
		if b.Out[i] != sum {
			return nil, fmt.Errorf("freqcalc: port candidate is not a covering at vertex %d: outdegree %d, base out-edges %d",
				i, b.Out[i], sum)
		}
	}
	return z, nil
}

// SolveSymmetric solves the detailed-balance system of §4.3 (eq. (4)):
// d_{i,j}·z_j = d_{j,i}·z_i, by propagating ratios along a spanning tree of
// the base's support and verifying every off-tree edge — the closed form the
// paper gives without Gaussian elimination.
func SolveSymmetric(b *minbase.Base) ([]int, error) {
	m := b.N()
	if !b.IsSymmetricQuotient() {
		return nil, fmt.Errorf("freqcalc: base support is not symmetric")
	}
	num := make([]int64, m) // z_i = num_i / den_i
	den := make([]int64, m)
	num[0], den[0] = 1, 1
	visited := make([]bool, m)
	visited[0] = true
	queue := []int{0}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for j := 0; j < m; j++ {
			if visited[j] || b.D[i][j] == 0 {
				continue
			}
			// eq. (4): z_j = z_i · d_{j,i} / d_{i,j}.
			num[j] = num[i] * int64(b.D[j][i])
			den[j] = den[i] * int64(b.D[i][j])
			g := gcd64(num[j], den[j])
			num[j] /= g
			den[j] /= g
			visited[j] = true
			queue = append(queue, j)
		}
	}
	for i := 0; i < m; i++ {
		if !visited[i] {
			return nil, fmt.Errorf("freqcalc: base support is disconnected at vertex %d", i)
		}
	}
	// Verify detailed balance on every edge (off-tree consistency).
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if b.D[i][j] == 0 {
				continue
			}
			// d_{i,j}·z_j == d_{j,i}·z_i ⟺ d_ij·num_j·den_i == d_ji·num_i·den_j.
			if int64(b.D[i][j])*num[j]*den[i] != int64(b.D[j][i])*num[i]*den[j] {
				return nil, fmt.Errorf("freqcalc: detailed balance fails on base edge %d—%d", i, j)
			}
		}
	}
	// Scale to the coprime positive integer vector.
	l := int64(1)
	for i := 0; i < m; i++ {
		l = lcm64(l, den[i])
	}
	z := make([]int, m)
	g := int64(0)
	for i := 0; i < m; i++ {
		v := num[i] * (l / den[i])
		z[i] = int(v)
		g = gcd64(g, v)
	}
	if g > 1 {
		for i := range z {
			z[i] /= int(g)
		}
	}
	return z, nil
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

func lcm64(a, b int64) int64 { return a / gcd64(a, b) * b }

// SolveFor dispatches on the communication model.
func SolveFor(kind model.Kind, b *minbase.Base) ([]int, error) {
	switch kind {
	case model.OutdegreeAware:
		return SolveOutdegree(b)
	case model.OutputPortAware:
		return SolvePorts(b)
	case model.Symmetric:
		return SolveSymmetric(b)
	default:
		return nil, fmt.Errorf("freqcalc: model %v cannot recover fibre cardinalities (Theorem 4.1 needs od, op, or symmetry)", kind)
	}
}
