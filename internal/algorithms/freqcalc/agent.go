package freqcalc

import (
	"fmt"

	"anonnet/internal/algorithms/minbase"
	"anonnet/internal/funcs"
	"anonnet/internal/model"
	"anonnet/internal/multiset"
)

// Help encodes the centralized-help assumptions of Table 1's rows.
type Help struct {
	// BoundN is a known bound N ≥ n, else 0 (Cor. 4.2). A bound does not
	// enlarge the computable class, but it enables the finite-state
	// minimum-base variant (§1's preference): agents freeze their
	// refinement once a stable stretch certifies the base, bounding state
	// and bandwidth.
	BoundN int
	// KnownN is the exact network size if known, else 0 (Cor. 4.3).
	KnownN int
	// Leaders is the number of distinguished leaders if known to all
	// agents, else 0 (Cor. 4.4 / eq. (5)); the leaders themselves are
	// marked via model.Input.Leader.
	Leaders int
}

// None is the no-centralized-help row of Table 1.
var None = Help{}

// Agent computes a frequency-based (or, with help, multiset-based) function
// by layering the §4.2 value-recovery on the distributed minimum-base
// automaton. It exposes the senders of the three capable models; the engine
// selects by Config.Kind.
type Agent struct {
	mb   minbaseAgent
	kind model.Kind
	f    funcs.Func
	help Help
	out  model.Value
}

// minbaseAgent is the slice of the minbase automaton the wrapper needs;
// both the unbounded and the finite-state (bounded) agents satisfy it.
type minbaseAgent interface {
	model.Broadcaster
	model.OutdegreeSender
	model.PortSender
	model.Corruptible
	CandidateBase() (*minbase.Base, bool)
}

var (
	_ model.Broadcaster     = (*Agent)(nil)
	_ model.OutdegreeSender = (*Agent)(nil)
	_ model.PortSender      = (*Agent)(nil)
	_ model.Corruptible     = (*Agent)(nil)
)

// NewFactory returns a factory of agents computing f under the given model
// and help. Without help, f must be frequency-based (Theorem 4.1: nothing
// more is computable); with the size known or leaders present, any
// multiset-based f is accepted (Cor. 4.3, 4.4).
func NewFactory(kind model.Kind, f funcs.Func, help Help) (model.Factory, error) {
	if _, err := minbase.NewAgent(kind, model.Input{}); err != nil {
		return nil, err
	}
	if help.BoundN < 0 || help.KnownN < 0 || help.Leaders < 0 {
		return nil, fmt.Errorf("freqcalc: negative help %+v", help)
	}
	if help.KnownN == 0 && help.Leaders == 0 && !funcs.FrequencyBased.Contains(f.Class) {
		return nil, fmt.Errorf("freqcalc: function %q is %v; without size or leaders only frequency-based functions are computable (Theorem 4.1)",
			f.Name, f.Class)
	}
	return func(in model.Input) model.Agent {
		var mb minbaseAgent
		if help.BoundN > 0 {
			mb, _ = minbase.NewBoundedAgent(kind, in, help.BoundN)
		} else {
			mb, _ = minbase.NewAgent(kind, in)
		}
		return &Agent{
			mb:   mb,
			kind: kind,
			f:    f,
			help: help,
			out:  f.Eval(multiset.New(in.Value)),
		}
	}, nil
}

// Send delegates to the minimum-base automaton (symmetric model).
func (a *Agent) Send() model.Message { return a.mb.Send() }

// SendOutdegree delegates to the minimum-base automaton (od model).
func (a *Agent) SendOutdegree(outdeg int) model.Message { return a.mb.SendOutdegree(outdeg) }

// SendPorts delegates to the minimum-base automaton (op model).
func (a *Agent) SendPorts(outdeg int) []model.Message { return a.mb.SendPorts(outdeg) }

// Receive advances the minimum-base computation and refreshes the output
// from the current candidate, keeping the previous output when the
// candidate is not (yet) solvable — outputs must merely converge (§2.3).
func (a *Agent) Receive(msgs []model.Message) {
	a.mb.Receive(msgs)
	base, ok := a.mb.CandidateBase()
	if !ok {
		return
	}
	ms, err := a.reconstruct(base)
	if err != nil {
		return
	}
	a.out = a.f.Eval(ms)
}

// reconstruct turns a candidate base into the value multiset f is applied
// to: multiplicities z without help (defined up to the factor k of eq. (2),
// immaterial for a frequency-based f), k·z with k = n/Σz when n is known,
// and k·z with k = ℓ/Σ_{L_B} z_j when ℓ leaders are known (eq. (5)).
func (a *Agent) reconstruct(base *minbase.Base) (*funcs.Args, error) {
	z, err := SolveFor(a.kind, base)
	if err != nil {
		return nil, err
	}
	k := 1
	switch {
	case a.help.Leaders > 0:
		w := base.LeaderWeight(z)
		if w == 0 || a.help.Leaders%w != 0 {
			return nil, fmt.Errorf("freqcalc: leader weight %d does not divide leader count %d", w, a.help.Leaders)
		}
		k = a.help.Leaders / w
	case a.help.KnownN > 0:
		s := 0
		for _, zi := range z {
			s += zi
		}
		if s == 0 || a.help.KnownN%s != 0 {
			return nil, fmt.Errorf("freqcalc: candidate weight %d does not divide known size %d", s, a.help.KnownN)
		}
		k = a.help.KnownN / s
	}
	if k != 1 {
		for i := range z {
			z[i] *= k
		}
	}
	return base.Multiset(z), nil
}

// Output returns the current value of the output variable.
func (a *Agent) Output() model.Value { return a.out }

// Corrupt scrambles the underlying minimum-base state and the output.
func (a *Agent) Corrupt(junk int64) {
	a.mb.Corrupt(junk)
	a.out = float64(junk%97) + 0.25
}

// Minbase exposes the underlying automaton, for white-box tests.
func (a *Agent) Minbase() minbaseAgent { return a.mb }
