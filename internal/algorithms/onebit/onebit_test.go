package onebit

import (
	"testing"

	"anonnet/internal/dynamic"
	"anonnet/internal/funcs"
	"anonnet/internal/graph"
	"anonnet/internal/model"
	"anonnet/internal/testutil"
)

func TestRejectsNonSetBased(t *testing.T) {
	for _, f := range []funcs.Func{funcs.Average(), funcs.Sum(), funcs.Mode()} {
		if _, err := NewFactory(f); err == nil {
			t.Errorf("onebit accepted %v function %q", f.Class, f.Name)
		}
	}
}

func TestComputesSetBasedOnStaticGraphs(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
	}{
		{"mixed", []float64{1, 0, 0, 1, 0, 1}},
		{"all-ones", []float64{1, 1, 1, 1, 1, 1}},
		{"all-zeros", []float64{0, 0, 0, 0, 0, 0}},
		{"lone-one", []float64{0, 0, 0, 0, 0, 1}},
		{"lone-zero", []float64{1, 1, 1, 1, 1, 0}},
	}
	for _, tc := range cases {
		for _, f := range []funcs.Func{funcs.Min(), funcs.Max(), funcs.SupportSize(), funcs.Range()} {
			factory, err := NewFactory(f)
			if err != nil {
				t.Fatal(err)
			}
			want := f.FromVector(tc.vals)
			// The native model, and the richer paper models the agent also
			// conforms to (it ignores their extra information).
			for _, kind := range []model.Kind{model.OneBitBroadcast, model.SimpleBroadcast, model.OutdegreeAware, model.OutputPortAware} {
				e := testutil.RunStatic(t, graph.Ring(6), kind, testutil.Inputs(tc.vals...), factory, 20, 1)
				testutil.AllOutputsEqual(t, e.Outputs(), want, tc.name+"/"+f.Name+"/"+kind.String())
			}
			e := testutil.RunStatic(t, graph.BidirectionalRing(6), model.Symmetric, testutil.Inputs(tc.vals...), factory, 20, 1)
			testutil.AllOutputsEqual(t, e.Outputs(), want, tc.name+"/"+f.Name+"/symmetric")
		}
	}
}

func TestStabilizesWithinTwiceDiameterRounds(t *testing.T) {
	// Both floods must cross the network, and each only floods on every
	// other round, so stabilization takes at most 2·D rounds — twice
	// gossip's bound, the price of the one-bit bandwidth.
	g := graph.Ring(9) // diameter 8
	vals := []float64{0, 0, 0, 0, 0, 0, 0, 0, 1}
	factory, err := NewFactory(funcs.Max())
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunStatic(t, g, model.OneBitBroadcast, testutil.Inputs(vals...), factory, 2*g.Diameter(), 2)
	testutil.AllOutputsEqual(t, e.Outputs(), 1.0, "max after 2D rounds")
}

func TestDynamicFiniteDiameter(t *testing.T) {
	// Table 2, one-bit row, on schedules connected every round. The
	// alternating flood has period 2, so period-2 schedules (SplitRing)
	// can resonate with it — the documented limitation; RandomConnected
	// and static-as-dynamic schedules are safe.
	vals := []float64{1, 0, 0, 1, 0, 0, 1, 0}
	for _, f := range []funcs.Func{funcs.Min(), funcs.Max(), funcs.SupportSize()} {
		factory, err := NewFactory(f)
		if err != nil {
			t.Fatal(err)
		}
		want := f.FromVector(vals)
		for name, s := range map[string]dynamic.Schedule{
			"random":  &dynamic.RandomConnected{Vertices: 8, ExtraEdges: 1, Seed: 2},
			"random2": &dynamic.RandomConnected{Vertices: 8, ExtraEdges: 2, Seed: 11},
		} {
			e := testutil.RunSchedule(t, s, model.OneBitBroadcast, testutil.Inputs(vals...), factory, 80, 3)
			testutil.AllOutputsEqual(t, e.Outputs(), want, f.Name+"/"+name)
		}
	}
}

func TestNotSelfStabilizing(t *testing.T) {
	// Parity flooding never forgets, like gossip: a corrupted OR
	// accumulator claiming a phantom 1 persists forever.
	vals := []float64{0, 0, 0}
	factory, err := NewFactory(funcs.Max())
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunStatic(t, graph.Ring(3), model.OneBitBroadcast, testutil.Inputs(vals...), factory, 10, 5)
	if got := e.Corrupt(1); got != 3 { // junk&1 != 0 → or = true everywhere
		t.Fatalf("corrupted %d agents, want 3", got)
	}
	for r := 0; r < 20; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for _, o := range e.Outputs() {
		if o.(float64) == 0.0 {
			t.Fatal("onebit forgot the corrupted OR bit — it should not be able to")
		}
	}
}

func TestForeignMessagesIgnored(t *testing.T) {
	factory, err := NewFactory(funcs.Max())
	if err != nil {
		t.Fatal(err)
	}
	a := factory(model.Input{Value: 0}).(*Agent)
	a.Receive([]model.Message{"not a bit", 42, model.Bit(true)})
	if got := a.Output().(float64); got != 1 {
		t.Fatalf("output %v, want 1 (the OR flood saw a true bit)", got)
	}
}

func TestWireFormatIsOneBit(t *testing.T) {
	// The model contract: every message on the wire is a model.Bit.
	factory, err := NewFactory(funcs.Max())
	if err != nil {
		t.Fatal(err)
	}
	a := factory(model.Input{Value: 1}).(*Agent)
	if _, ok := a.Send().(model.Bit); !ok {
		t.Fatalf("Send returned %T, want model.Bit", a.Send())
	}
	if !a.SendBit() {
		t.Fatal("agent with input 1 should send a 1 bit in the OR phase")
	}
}
