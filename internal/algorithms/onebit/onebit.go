// Package onebit implements the reference algorithm of the one-bit
// broadcast model (Blanc, Di Luna & Viglietta): agents whose sending
// function emits a single bit per round — σ : Q → {0, 1} — over binary
// inputs. The algorithm is alternating parity flooding: odd rounds flood
// the OR of the inputs seen so far, even rounds flood the AND, each by
// broadcasting the current accumulator bit and folding the received bits
// in. Once both floods have crossed the network, an agent knows whether
// any input was 1 (the OR) and whether any input was 0 (the negated AND) —
// which over inputs restricted to {0, 1} is the full input *set*, so every
// set-based function is computable. This realizes the positive half of the
// one-bit rows of Tables 1 and 2; the ceiling (nothing beyond set-based)
// is inherited from simple broadcast, since one bit is syntactically a
// restriction of an arbitrary message.
//
// The alternating flood has period 2, so on dynamic schedules whose graph
// sequence alternates with the same period (e.g. a split ring), one flood
// can resonate with the schedule and only ever cross half the
// configurations. The cmd/tables harness therefore verifies the dynamic
// one-bit cells on schedules that are connected every round; the static
// cells are immune.
package onebit

import (
	"fmt"

	"anonnet/internal/funcs"
	"anonnet/internal/model"
	"anonnet/internal/multiset"
)

// Agent is one parity-flooding automaton. Beyond model.BitSender it
// implements the senders of the four paper models too, wrapping the bit as
// each expects, so the conformance harness can replay the same algorithm
// under richer models and compare traces.
type Agent struct {
	f funcs.Func
	// odd tracks the phase parity: true before an odd (OR-flood) round's
	// send. Receive flips it, keeping send and receive of a round in the
	// same phase.
	odd bool
	// or accumulates the OR flood: true once a 1-input is reachable.
	or bool
	// and accumulates the AND flood: false once a 0-input is reachable.
	and bool
}

var (
	_ model.BitSender       = (*Agent)(nil)
	_ model.Broadcaster     = (*Agent)(nil)
	_ model.OutdegreeSender = (*Agent)(nil)
	_ model.PortSender      = (*Agent)(nil)
	_ model.Corruptible     = (*Agent)(nil)
)

// NewFactory returns a factory of one-bit parity-flooding agents computing
// f, which must be set-based — the floods retain which bits occur, never
// how often. Inputs must be binary; the factory cannot see them, so the
// agent rejects non-binary inputs by treating any nonzero value as 1 (the
// job-spec codec validates binary inputs before an execution is built).
func NewFactory(f funcs.Func) (model.Factory, error) {
	if f.Class != funcs.SetBased {
		return nil, fmt.Errorf("onebit: function %q is %v, need set-based", f.Name, f.Class)
	}
	return func(in model.Input) model.Agent {
		b := in.Value != 0
		return &Agent{f: f, odd: true, or: b, and: b}
	}, nil
}

// SendBit emits the current flood's accumulator: the OR bit on odd rounds,
// the AND bit on even ones.
func (a *Agent) SendBit() bool {
	if a.odd {
		return a.or
	}
	return a.and
}

// Send wraps the bit for the simple-broadcast and symmetric models.
func (a *Agent) Send() model.Message { return model.Bit(a.SendBit()) }

// SendOutdegree ignores the outdegree: parity flooding is graph-invariant.
func (a *Agent) SendOutdegree(int) model.Message { return a.Send() }

// SendPorts sends the same bit on every port.
func (a *Agent) SendPorts(outdeg int) []model.Message {
	m := a.Send()
	out := make([]model.Message, outdeg)
	for i := range out {
		out[i] = m
	}
	return out
}

// Receive folds the received bits into the current flood's accumulator —
// OR on odd rounds, AND on even — then flips the phase. BitCounts reduces
// the multiset to its sufficient statistic, so delivery order (and any
// foreign traffic) is immaterial.
func (a *Agent) Receive(msgs []model.Message) {
	ones, total := model.BitCounts(msgs)
	if a.odd {
		a.or = a.or || ones > 0
	} else {
		a.and = a.and && ones == total
	}
	a.odd = !a.odd
}

// Output evaluates f on the reconstructed input set: 1 is present iff the
// OR flood saw it, 0 is present iff the AND flood lost it. Before either
// flood has crossed the network the set is a partial view, exactly like
// gossip's — the outputs stabilize within 2·D rounds.
func (a *Agent) Output() model.Value {
	vals := make([]float64, 0, 2)
	if !a.and {
		vals = append(vals, 0)
	}
	if a.or {
		vals = append(vals, 1)
	}
	if len(vals) == 0 {
		// or=false ∧ and=true claims "no input at all" — unreachable for
		// an uncorrupted agent (its own input seeds both accumulators),
		// but a corrupted one can land here; report the empty set as {0}
		// so f still gets a nonempty multiset.
		vals = append(vals, 0)
	}
	return a.f.Eval(multiset.New(vals...))
}

// Corrupt scrambles the accumulators and the phase from the junk's low
// bits. Parity flooding never forgets, so like gossip it is not
// self-stabilizing — the corruption persists, which the self-stabilization
// experiments demonstrate.
func (a *Agent) Corrupt(junk int64) {
	a.or = junk&1 != 0
	a.and = junk&2 != 0
	a.odd = junk&4 != 0
}
