// Package pushsum implements Section 5's positive results for dynamic
// networks with outdegree awareness: the Push-Sum algorithm computing the
// quot-sum function (Theorem 5.2), its frequency-function form (Algorithm
// 1) with the exact ℚ_N rounding of Cor. 5.3, the n-known multiset recovery
// of Cor. 5.4, the leader variant of §5.5, and the
// continuous-in-frequency evaluation of Cor. 5.5.
//
// Push-Sum uses no persistent memory beyond its running (y, z) pair, is not
// self-stabilizing, but tolerates asynchronous starts (§5.3) — properties
// the test suite demonstrates.
package pushsum

import (
	"anonnet/internal/model"
)

// QuotMsg is the per-round Push-Sum message: the sender's mass pair already
// split by its current outdegree (eqs. (6)–(7)).
type QuotMsg struct {
	Y, Z float64
}

// QuotSum is the plain Push-Sum automaton for the quot-sum function
// qs((v_1,w_1),…,(v_n,w_n)) = Σv / Σw of §5.1. Each agent holds (y, z),
// initialized to (v_i, w_i); each round it ships y/d, z/d along its d
// out-edges (self-loop included) and replaces (y, z) by the received sums.
// The output x = y/z converges to the quot-sum in any dynamic network of
// finite dynamic diameter.
type QuotSum struct {
	y, z float64
}

var (
	_ model.OutdegreeSender = (*QuotSum)(nil)
	_ model.VectorAgent     = (*QuotSum)(nil)
)

// NewQuotSum returns an agent with numerator v and positive weight w.
func NewQuotSum(v, w float64) *QuotSum { return &QuotSum{y: v, z: w} }

// NewAverageFactory returns the factory computing the average of the input
// values: Push-Sum with weights w_i = 1.
func NewAverageFactory() model.Factory {
	return func(in model.Input) model.Agent { return NewQuotSum(in.Value, 1) }
}

// SendOutdegree ships the split mass pair.
func (a *QuotSum) SendOutdegree(outdeg int) model.Message {
	d := float64(outdeg)
	return QuotMsg{Y: a.y / d, Z: a.z / d}
}

// Receive replaces the mass pair by the received sums (eqs. (6)–(7)).
func (a *QuotSum) Receive(msgs []model.Message) {
	var y, z float64
	for _, raw := range msgs {
		m, ok := raw.(QuotMsg)
		if !ok {
			continue
		}
		y += m.Y
		z += m.Z
	}
	a.y, a.z = y, z
}

// InitVector reports width 2: the split mass pair (y/d, z/d). Push-Sum is
// linear in the received multiset, so every QuotSum vectorizes.
func (a *QuotSum) InitVector(universe []float64) int { return 2 }

// SendVector writes the split mass pair — the same divisions SendOutdegree
// performs, so both paths ship bit-identical shares.
func (a *QuotSum) SendVector(outdeg int, dst []float64) {
	d := float64(outdeg)
	dst[0] = a.y / d
	dst[1] = a.z / d
}

// ReceiveVector replaces the mass pair by the received sums; the engine
// sums the shares in the same shuffled order Receive iterates, so the new
// (y, z) agree with the generic path bit for bit.
func (a *QuotSum) ReceiveVector(sum []float64, count int) {
	a.y, a.z = sum[0], sum[1]
}

// Output returns x = y/z.
func (a *QuotSum) Output() model.Value { return a.y / a.z }

// Mass returns the current (y, z) pair; the conservation property tests use
// it to check Σy and Σz are invariants.
func (a *QuotSum) Mass() (y, z float64) { return a.y, a.z }
