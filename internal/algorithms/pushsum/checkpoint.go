package pushsum

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"anonnet/internal/model"
)

// Checkpoint support (model.Checkpointable): both Push-Sum automata can
// serialize their dynamic state and restore it into a factory-fresh
// instance, which is what lets long O(n²·D·log 1/ε)-round runs survive a
// daemon restart. gob keeps every float64 bit-exact, so a resumed run's
// trace is byte-identical to an uninterrupted one (asserted by the
// engine's resume-equality tests). The message types are gob-registered so
// in-flight delayed messages (fault plans with delay channels) serialize
// alongside the agent states.

func init() {
	gob.Register(QuotMsg{})
	gob.Register(FreqMsg{})
}

var (
	_ model.Checkpointable = (*QuotSum)(nil)
	_ model.Checkpointable = (*Frequency)(nil)
)

// quotSumState is QuotSum's dynamic state: the running mass pair.
type quotSumState struct {
	Y, Z float64
}

// MarshalState serializes the running (y, z) mass pair.
func (a *QuotSum) MarshalState() ([]byte, error) {
	return encodeState(quotSumState{Y: a.y, Z: a.z})
}

// UnmarshalState restores the running (y, z) mass pair.
func (a *QuotSum) UnmarshalState(data []byte) error {
	var st quotSumState
	if err := decodeState(data, &st); err != nil {
		return fmt.Errorf("pushsum: QuotSum state: %w", err)
	}
	a.y, a.z = st.Y, st.Z
	return nil
}

// frequencyState is Frequency's dynamic state: the recorded outdegree, the
// per-value mass arrays, and the last good output (the output has
// hysteresis — reconstruction failures keep the previous value — so it is
// state, not a function of y and z).
type frequencyState struct {
	Outdeg int
	Y, Z   map[float64]float64
	Out    float64
}

// MarshalState serializes the per-value mass arrays and the output.
func (a *Frequency) MarshalState() ([]byte, error) {
	out, ok := a.out.(float64)
	if !ok {
		return nil, fmt.Errorf("pushsum: Frequency output is %T, not float64", a.out)
	}
	return encodeState(frequencyState{Outdeg: a.outdeg, Y: a.y, Z: a.z, Out: out})
}

// UnmarshalState restores the per-value mass arrays and the output. The
// configuration (mode, function, bounds), the private input, and the
// engine-provided universe are the fresh instance's own.
func (a *Frequency) UnmarshalState(data []byte) error {
	var st frequencyState
	if err := decodeState(data, &st); err != nil {
		return fmt.Errorf("pushsum: Frequency state: %w", err)
	}
	if st.Y == nil {
		st.Y = make(map[float64]float64)
	}
	if st.Z == nil {
		st.Z = make(map[float64]float64)
	}
	a.outdeg, a.y, a.z, a.out = st.Outdeg, st.Y, st.Z, st.Out
	return nil
}

func encodeState(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeState(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
