package pushsum

import (
	"math"
	"math/rand"
	"testing"

	"anonnet/internal/dynamic"
	"anonnet/internal/engine"
	"anonnet/internal/funcs"
	"anonnet/internal/graph"
	"anonnet/internal/model"
	"anonnet/internal/testutil"
)

func schedules(n int) map[string]dynamic.Schedule {
	return map[string]dynamic.Schedule{
		"static-ring":      dynamic.NewStatic(graph.Ring(n)),
		"static-random":    dynamic.NewStatic(graph.RandomStronglyConnected(n, n, rand.New(rand.NewSource(5)))),
		"random-connected": &dynamic.RandomConnected{Vertices: n, ExtraEdges: 2, Seed: 9},
		"split-ring":       &dynamic.SplitRing{Vertices: n},
		"pairwise":         &dynamic.Pairwise{Vertices: n, Seed: 4},
	}
}

func TestQuotSumComputesAverage(t *testing.T) {
	n := 8
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	want := 31.0 / 8
	for name, s := range schedules(n) {
		e := testutil.RunSchedule(t, s, model.OutdegreeAware, testutil.Inputs(vals...),
			NewAverageFactory(), 400, 1)
		testutil.AllOutputsNear(t, e.Outputs(), want, 1e-6, name)
	}
}

func TestQuotSumGeneralWeights(t *testing.T) {
	// quot-sum with weights: Σv/Σw for w ≠ 1.
	vals := []float64{10, 20, 30}
	weights := []float64{1, 2, 2}
	want := 60.0 / 5
	i := 0
	factory := func(in model.Input) model.Agent {
		a := NewQuotSum(in.Value, weights[i])
		i++
		return a
	}
	e := testutil.RunSchedule(t, dynamic.NewStatic(graph.Ring(3)), model.OutdegreeAware,
		testutil.Inputs(vals...), factory, 300, 2)
	testutil.AllOutputsNear(t, e.Outputs(), want, 1e-9, "weighted quot-sum")
}

func TestQuotSumMassConservation(t *testing.T) {
	n := 6
	vals := []float64{1, 2, 3, 4, 5, 6}
	e := testutil.RunSchedule(t, &dynamic.RandomConnected{Vertices: n, ExtraEdges: 1, Seed: 3},
		model.OutdegreeAware, testutil.Inputs(vals...), NewAverageFactory(), 0, 3)
	for r := 0; r < 50; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		var sy, sz float64
		for i := 0; i < n; i++ {
			y, z := e.Agent(i).(*QuotSum).Mass()
			sy += y
			sz += z
		}
		if math.Abs(sy-21) > 1e-9 || math.Abs(sz-6) > 1e-9 {
			t.Fatalf("round %d: mass (Σy, Σz) = (%v, %v), want (21, 6)", r+1, sy, sz)
		}
	}
}

func TestQuotSumAsyncStarts(t *testing.T) {
	n := 5
	vals := []float64{2, 4, 6, 8, 10}
	e, err := engine.New(engine.Config{
		Schedule: dynamic.NewStatic(graph.BidirectionalRing(n)),
		Kind:     model.OutdegreeAware,
		Inputs:   testutil.Inputs(vals...),
		Factory:  NewAverageFactory(),
		Starts:   []int{1, 3, 2, 6, 1},
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 400; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	testutil.AllOutputsNear(t, e.Outputs(), 6, 1e-6, "async quot-sum")
}

func TestTheorem52ConvergenceRateShape(t *testing.T) {
	// Theorem 5.2: ε-convergence within O(n²·D·log(1/ε)) — so halving ε
	// adds rounds linearly, and the round count stays far below the bound.
	n := 6
	vals := []float64{1, 2, 3, 4, 5, 6}
	target := 3.5
	roundsTo := func(eps float64) int {
		e := testutil.RunSchedule(t, dynamic.NewStatic(graph.Ring(n)), model.OutdegreeAware,
			testutil.Inputs(vals...), NewAverageFactory(), 0, 5)
		res, err := engine.RunUntilClose(e, target, model.Euclid, eps, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("no convergence to ε=%g within 10000 rounds", eps)
		}
		return res.Rounds
	}
	r2 := roundsTo(1e-2)
	r8 := roundsTo(1e-8)
	if r8 <= r2 {
		t.Fatalf("rounds(1e-8)=%d should exceed rounds(1e-2)=%d", r8, r2)
	}
	// The paper's bound with D = n-1: n²·D·log(1/ε) ≈ 36·5·18 ≈ 3300.
	if r8 > 3300 {
		t.Fatalf("rounds(1e-8)=%d exceeds the Theorem 5.2 bound", r8)
	}
}

func TestFrequencyQuotientsConverge(t *testing.T) {
	// ν = {1: 1/2, 2: 1/3, 7: 1/6} on n = 6.
	vals := []float64{1, 1, 1, 2, 2, 7}
	factory, err := NewFrequencyFactory(FrequencyConfig{F: funcs.Average(), Mode: Approximate})
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range schedules(6) {
		e := testutil.RunSchedule(t, s, model.OutdegreeAware, testutil.Inputs(vals...), factory, 500, 6)
		for i := 0; i < e.N(); i++ {
			q := e.Agent(i).(*Frequency).Quotients()
			for w, wantFreq := range map[float64]float64{1: 0.5, 2: 1.0 / 3, 7: 1.0 / 6} {
				if math.Abs(q[w]-wantFreq) > 1e-6 {
					t.Fatalf("%s: agent %d freq(%g) = %v, want %v", name, i, w, q[w], wantFreq)
				}
			}
		}
	}
}

func TestFrequencyMassExactlyN(t *testing.T) {
	// The column-stochastic join rule keeps Σz = n once every agent has
	// joined every instance — the conservation law whose violation by the
	// transcribed Algorithm 1 is recorded in DESIGN.md §6.
	vals := []float64{1, 2, 2}
	factory, err := NewFrequencyFactory(FrequencyConfig{F: funcs.Average(), Mode: Approximate})
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunSchedule(t, dynamic.NewStatic(graph.Path(3)), model.OutdegreeAware,
		testutil.Inputs(vals...), factory, 20, 7)
	var sy, sz float64
	for i := 0; i < e.N(); i++ {
		y, z := e.Agent(i).(*Frequency).Mass()
		sy += y
		sz += z
	}
	// Two instances (values 1 and 2): Σy = 1 + 2 = 3; Σz = 3 + 3 = 6.
	if math.Abs(sy-3) > 1e-9 {
		t.Fatalf("Σy = %v, want 3", sy)
	}
	if math.Abs(sz-6) > 1e-9 {
		t.Fatalf("Σz = %v, want 6 (= n per instance): the literal Algorithm 1 patch rule gives 19/6 per instance", sz)
	}
}

func TestCorollary53ExactWithBound(t *testing.T) {
	// With a bound N ≥ n, rounding in ℚ_N stabilizes on the exact
	// frequency-based value in finite time.
	vals := []float64{1, 1, 1, 2, 2, 7}
	want := funcs.Average().FromVector(vals)
	for _, bound := range []int{6, 10, 17} {
		factory, err := NewFrequencyFactory(FrequencyConfig{F: funcs.Average(), Mode: RoundToBound, BoundN: bound})
		if err != nil {
			t.Fatal(err)
		}
		e := testutil.RunSchedule(t, &dynamic.RandomConnected{Vertices: 6, ExtraEdges: 2, Seed: 11},
			model.OutdegreeAware, testutil.Inputs(vals...), factory, 600, 8)
		testutil.AllOutputsNear(t, e.Outputs(), want, 0, "bound N="+string(rune('0'+bound%10)))
	}
}

func TestCorollary54MultisetWithKnownSize(t *testing.T) {
	vals := []float64{1, 1, 1, 2, 2, 7}
	factory, err := NewFrequencyFactory(FrequencyConfig{F: funcs.Sum(), Mode: ExactSize, KnownN: 6})
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunSchedule(t, &dynamic.SplitRing{Vertices: 6}, model.OutdegreeAware,
		testutil.Inputs(vals...), factory, 800, 9)
	testutil.AllOutputsNear(t, e.Outputs(), 14, 0, "sum with n known")
}

func TestLeaderVariantComputesMultiplicities(t *testing.T) {
	// §5.5: with one leader and z-mass only at leaders, ℓ·x[ω] →
	// multiplicity(ω); count and sum become computable.
	vals := []float64{1, 1, 1, 2, 2, 7}
	inputs := testutil.WithLeaders(testutil.Inputs(vals...), 2)
	for _, f := range []funcs.Func{funcs.Sum(), funcs.Count()} {
		factory, err := NewFrequencyFactory(FrequencyConfig{F: f, Mode: LeaderCount, Leaders: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := f.FromVector(vals)
		e := testutil.RunSchedule(t, &dynamic.RandomConnected{Vertices: 6, ExtraEdges: 1, Seed: 13},
			model.OutdegreeAware, inputs, factory, 800, 10)
		testutil.AllOutputsNear(t, e.Outputs(), want, 0, "leader "+f.Name)
	}
}

func TestTwoLeaders(t *testing.T) {
	vals := []float64{5, 5, 3, 3, 3, 3}
	inputs := testutil.WithLeaders(testutil.Inputs(vals...), 0, 5)
	factory, err := NewFrequencyFactory(FrequencyConfig{F: funcs.Count(), Mode: LeaderCount, Leaders: 2})
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunSchedule(t, dynamic.NewStatic(graph.BidirectionalRing(6)),
		model.OutdegreeAware, inputs, factory, 600, 11)
	testutil.AllOutputsNear(t, e.Outputs(), 6, 0, "two-leader count")
}

func TestContinuityRequirementEnforced(t *testing.T) {
	if _, err := NewFrequencyFactory(FrequencyConfig{F: funcs.Sum(), Mode: Approximate}); err == nil {
		t.Fatal("sum accepted without size knowledge")
	}
	if _, err := NewFrequencyFactory(FrequencyConfig{F: funcs.Sum(), Mode: RoundToBound, BoundN: 8}); err == nil {
		t.Fatal("sum accepted with only a bound")
	}
	if _, err := NewFrequencyFactory(FrequencyConfig{F: funcs.Average(), Mode: RoundToBound}); err == nil {
		t.Fatal("RoundToBound accepted without a bound")
	}
	if _, err := NewFrequencyFactory(FrequencyConfig{F: funcs.Average(), Mode: ExactSize}); err == nil {
		t.Fatal("ExactSize accepted without n")
	}
	if _, err := NewFrequencyFactory(FrequencyConfig{F: funcs.Average(), Mode: LeaderCount}); err == nil {
		t.Fatal("LeaderCount accepted without ℓ")
	}
	if _, err := NewFrequencyFactory(FrequencyConfig{F: funcs.Average(), Mode: 0}); err == nil {
		t.Fatal("invalid mode accepted")
	}
}

func TestFrequencyAsyncStarts(t *testing.T) {
	vals := []float64{1, 1, 2, 2, 2, 4}
	factory, err := NewFrequencyFactory(FrequencyConfig{F: funcs.Average(), Mode: RoundToBound, BoundN: 8})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(engine.Config{
		Schedule: dynamic.NewStatic(graph.BidirectionalRing(6)),
		Kind:     model.OutdegreeAware,
		Inputs:   testutil.Inputs(vals...),
		Factory:  factory,
		Starts:   []int{1, 4, 2, 9, 1, 2},
		Seed:     12,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 900; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	testutil.AllOutputsNear(t, e.Outputs(), 2, 0, "async exact frequency")
}

func TestThresholdPredicateIrrational(t *testing.T) {
	// Φ_r^ω with irrational r is continuous in frequency: the Approximate
	// mode converges to it even without a bound (Cor. 5.5).
	vals := []float64{1, 1, 2}
	f := funcs.ThresholdFreq(1, math.Sqrt2/2) // ν(1) = 2/3 ≈ 0.667 ≥ 0.707? no → 0
	factory, err := NewFrequencyFactory(FrequencyConfig{F: f, Mode: Approximate})
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunSchedule(t, dynamic.NewStatic(graph.Ring(3)), model.OutdegreeAware,
		testutil.Inputs(vals...), factory, 400, 13)
	testutil.AllOutputsNear(t, e.Outputs(), 0, 0, "threshold predicate")
}

func TestGrowingGapsExploration(t *testing.T) {
	// §6 asks what happens to the outdegree-awareness results when no
	// finite dynamic diameter exists. On this benign growing-gap adversary
	// Push-Sum still converges (quiet rounds are identity matrices, and
	// contraction recurs at every communication round); the open question
	// concerns adversarial schedules, which this does not settle — see
	// EXPERIMENTS.md.
	n := 5
	vals := []float64{2, 4, 6, 8, 10}
	s := &dynamic.GrowingGaps{Base: dynamic.NewStatic(graph.BidirectionalRing(n))}
	e := testutil.RunSchedule(t, s, model.OutdegreeAware, testutil.Inputs(vals...),
		NewAverageFactory(), 0, 4)
	res, err := engine.RunUntilClose(e, 6.0, model.Euclid, 1e-4, 60000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("Push-Sum did not converge under growing gaps (max err %g)", res.MaxErr)
	}
}
