package pushsum

import (
	"fmt"
	"math"

	"anonnet/internal/funcs"
	"anonnet/internal/model"
	"anonnet/internal/multiset"
	"anonnet/internal/reconstruct"
)

// FreqMsg is the per-round message of the frequency algorithm: the sender's
// full (y, z) arrays, undivided, plus its current outdegree — the
// ⟨y_i, z_i, d⁻_i⟩ of Algorithm 1.
type FreqMsg struct {
	Y, Z map[float64]float64
	D    int
}

// Mode selects how a Frequency agent turns its running frequency estimates
// into the output value.
type Mode int

// Output modes, one per §5.4/§5.5 result.
const (
	// Approximate outputs f evaluated on the normalized frequencies x̂
	// (§5.4's no-bound case): convergence holds for every function that is
	// δ-continuous in frequency (Cor. 5.5).
	Approximate Mode = iota + 1
	// RoundToBound rounds each frequency to the nearest rational of ℚ_N
	// for a known bound N ≥ n, giving exact computation in finite time of
	// any frequency-based function (Cor. 5.3).
	RoundToBound
	// ExactSize recovers multiplicities from frequencies with the exact
	// size n known, computing any multiset-based function (Cor. 5.4).
	ExactSize
	// LeaderCount recovers multiplicities as ℓ·x[ω] with ℓ known leaders
	// (§5.5), computing any multiset-based function.
	LeaderCount
)

// Frequency runs one Push-Sum instance per value present in the network
// (Algorithm 1) under outdegree awareness.
//
// Deviation from the transcribed pseudocode, recorded in DESIGN.md §6:
// lines 9–10, read literally, patch a missing entry of a sender with
// z = 1 every round, which injects z-mass whenever an agent stays unaware
// of ω for several rounds (on the 3-path with ω at one end, total z-mass
// settles at 19/6 ≠ 3). We implement the column-stochastic emulation of the
// asynchronous-start reduction (§5.3) that the paper's own correctness
// argument appeals to: a sender unaware of ω contributes nothing to
// instance ω, and an agent incorporates its retained unit mass exactly once
// — at the round it first processes ω. Total z-mass is then exactly n once
// every agent has joined, and x[ω] → multiplicity(ω)/n.
type Frequency struct {
	mode    Mode
	f       funcs.Func
	boundN  int // RoundToBound
	knownN  int // ExactSize
	leaders int // LeaderCount
	leader  bool

	own    float64
	outdeg int
	y, z   map[float64]float64
	out    model.Value

	// universe is the engine-provided dense layout for vectorized runs:
	// sorted distinct input values, read-only (see model.VectorAgent).
	universe []float64
}

var (
	_ model.OutdegreeSender = (*Frequency)(nil)
	_ model.VectorAgent     = (*Frequency)(nil)
)

// FrequencyConfig parameterizes NewFrequencyFactory.
type FrequencyConfig struct {
	// F is the function computed from the recovered frequencies or
	// multiplicities.
	F funcs.Func
	// Mode selects the §5.4/§5.5 variant.
	Mode Mode
	// BoundN is the known bound N ≥ n (RoundToBound).
	BoundN int
	// KnownN is the known exact size (ExactSize).
	KnownN int
	// Leaders is the known number of leaders (LeaderCount).
	Leaders int
}

// NewFrequencyFactory validates the configuration against the paper's
// characterization and returns the agent factory.
func NewFrequencyFactory(cfg FrequencyConfig) (model.Factory, error) {
	switch cfg.Mode {
	case Approximate:
		if !funcs.FrequencyBased.Contains(cfg.F.Class) {
			return nil, fmt.Errorf("pushsum: %q is %v; without a bound only (continuous) frequency-based functions converge (Cor. 5.5)", cfg.F.Name, cfg.F.Class)
		}
	case RoundToBound:
		if cfg.BoundN < 1 {
			return nil, fmt.Errorf("pushsum: RoundToBound needs a bound N ≥ 1, got %d", cfg.BoundN)
		}
		if !funcs.FrequencyBased.Contains(cfg.F.Class) {
			return nil, fmt.Errorf("pushsum: %q is %v; with only a bound, only frequency-based functions are computable (Cor. 5.3)", cfg.F.Name, cfg.F.Class)
		}
	case ExactSize:
		if cfg.KnownN < 1 {
			return nil, fmt.Errorf("pushsum: ExactSize needs the size n ≥ 1, got %d", cfg.KnownN)
		}
	case LeaderCount:
		if cfg.Leaders < 1 {
			return nil, fmt.Errorf("pushsum: LeaderCount needs ℓ ≥ 1 known leaders, got %d", cfg.Leaders)
		}
	default:
		return nil, fmt.Errorf("pushsum: invalid mode %d", int(cfg.Mode))
	}
	return func(in model.Input) model.Agent {
		a := &Frequency{
			mode:    cfg.Mode,
			f:       cfg.F,
			boundN:  cfg.BoundN,
			knownN:  cfg.KnownN,
			leaders: cfg.Leaders,
			leader:  in.Leader,
			own:     in.Value,
			y:       map[float64]float64{in.Value: 1},
			z:       map[float64]float64{in.Value: initialMass(cfg.Mode, in.Leader)},
			out:     cfg.F.Eval(multiset.New(in.Value)),
		}
		return a
	}, nil
}

// initialMass is the z initialization: 1 in the standard algorithm; in the
// leader variant 1 for leaders and 0 otherwise (§5.5).
func initialMass(mode Mode, leader bool) float64 {
	if mode == LeaderCount && !leader {
		return 0
	}
	return 1
}

// SendOutdegree ships the full arrays with the current outdegree.
func (a *Frequency) SendOutdegree(outdeg int) model.Message {
	a.outdeg = outdeg
	y := make(map[float64]float64, len(a.y))
	z := make(map[float64]float64, len(a.z))
	for k, v := range a.y {
		y[k] = v
	}
	for k, v := range a.z {
		z[k] = v
	}
	return FreqMsg{Y: y, Z: z, D: outdeg}
}

// Receive applies the per-value Push-Sum update: for every value ω known to
// any sender, sum the shares of the senders aware of ω; an agent joining
// instance ω adds its retained initial mass once.
func (a *Frequency) Receive(msgs []model.Message) {
	incoming := make([]FreqMsg, 0, len(msgs))
	support := make(map[float64]bool, len(a.y))
	for w := range a.y {
		support[w] = true
	}
	for _, raw := range msgs {
		m, ok := raw.(FreqMsg)
		if !ok || m.D < 1 {
			continue
		}
		incoming = append(incoming, m)
		for w := range m.Y {
			support[w] = true
		}
	}
	newY := make(map[float64]float64, len(support))
	newZ := make(map[float64]float64, len(support))
	for w := range support {
		var ySum, zSum float64
		for _, m := range incoming {
			if _, aware := m.Y[w]; !aware {
				continue // unaware sender: its mass is retained at its end
			}
			d := float64(m.D)
			ySum += m.Y[w] / d
			zSum += m.Z[w] / d
		}
		if _, joined := a.y[w]; !joined {
			// First time processing instance ω: incorporate the retained
			// initial mass exactly once (the virtual self-loop of the
			// asynchronous-start reduction).
			zSum += initialMass(a.mode, a.leader)
		}
		newY[w] = ySum
		newZ[w] = zSum
	}
	a.y, a.z = newY, newZ
	a.refreshOutput()
}

// InitVector reports width 3 per universe value: the y-share, the z-share,
// and an awareness flag. The flag is load-bearing: an agent aware of ω with
// zero mass differs from an unaware one — awareness is what triggers a
// neighbour's one-time initial-mass join — and the flat rows must carry
// that distinction, since a dense 0 cannot.
func (a *Frequency) InitVector(universe []float64) int {
	a.universe = universe
	return 3 * len(universe)
}

// SendVector lays the per-value shares out densely. The shares are the very
// m.Y[ω]/d divisions Receive performs on arrival, moved to the sender —
// identical operands, identical bits — and an unaware value's (0, 0, 0) row
// contributes exact zeros that leave the receiver's running sums unchanged
// (the masses are non-negative, so no −0 can arise).
func (a *Frequency) SendVector(outdeg int, dst []float64) {
	a.outdeg = outdeg
	d := float64(outdeg)
	for k, w := range a.universe {
		if y, aware := a.y[w]; aware {
			dst[3*k] = y / d
			dst[3*k+1] = a.z[w] / d
			dst[3*k+2] = 1
		} else {
			dst[3*k] = 0
			dst[3*k+1] = 0
			dst[3*k+2] = 0
		}
	}
}

// ReceiveVector applies the same per-value update as Receive: a value is in
// support when some sender was aware of it (flag sum > 0) or this agent
// already runs its instance; a joining agent incorporates its retained
// initial mass exactly once.
func (a *Frequency) ReceiveVector(sum []float64, count int) {
	newY := make(map[float64]float64, len(a.y))
	newZ := make(map[float64]float64, len(a.y))
	for k, w := range a.universe {
		_, joined := a.y[w]
		if sum[3*k+2] == 0 && !joined {
			continue // ω not in support: no instance here yet
		}
		ySum, zSum := sum[3*k], sum[3*k+1]
		if !joined {
			zSum += initialMass(a.mode, a.leader)
		}
		newY[w] = ySum
		newZ[w] = zSum
	}
	a.y, a.z = newY, newZ
	a.refreshOutput()
}

// Quotients returns the raw per-value quotients x[ω] = y[ω]/z[ω] (which
// converge to ν(ω) in the standard modes and to multiplicity(ω)/ℓ in the
// leader variant). Values with z[ω] = 0 map to +Inf, as §5.5 notes can
// transiently happen.
func (a *Frequency) Quotients() map[float64]float64 {
	out := make(map[float64]float64, len(a.y))
	for w, y := range a.y {
		z := a.z[w]
		if z == 0 {
			out[w] = math.Inf(1)
			continue
		}
		out[w] = y / z
	}
	return out
}

// Mass returns the total (Σy, Σz) held by this agent, for the conservation
// property tests.
func (a *Frequency) Mass() (y, z float64) {
	for _, v := range a.y {
		y += v
	}
	for _, v := range a.z {
		z += v
	}
	return y, z
}

func (a *Frequency) refreshOutput() {
	ms, ok := a.reconstruct()
	if !ok {
		return
	}
	a.out = a.f.Eval(ms)
}

// reconstruct builds the value multiset the function is applied to, per
// mode.
func (a *Frequency) reconstruct() (*funcs.Args, bool) {
	x := a.Quotients()
	switch a.mode {
	case Approximate:
		return reconstruct.Approximate(x, 360360) // highly divisible denominator
	case RoundToBound:
		return reconstruct.Rounded(x, a.boundN)
	case ExactSize:
		return reconstruct.Counts(x, float64(a.knownN))
	case LeaderCount:
		return reconstruct.Counts(x, float64(a.leaders))
	default:
		return nil, false
	}
}

// Output returns the current output value.
func (a *Frequency) Output() model.Value { return a.out }
