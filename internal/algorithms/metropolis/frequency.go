package metropolis

import (
	"fmt"

	"anonnet/internal/funcs"
	"anonnet/internal/model"
	"anonnet/internal/multiset"
	"anonnet/internal/reconstruct"
)

// FreqMsg carries the sender's per-value estimates and degree.
type FreqMsg struct {
	X map[float64]float64
	D int
}

// FreqMode selects the output reconstruction of a frequency run.
type FreqMode int

// The reconstruction modes (the symmetric-communications column of Table 2).
const (
	// FreqApproximate evaluates f on the normalized estimates; converges
	// for functions δ-continuous in frequency.
	FreqApproximate FreqMode = iota + 1
	// FreqRoundToBound rounds each estimate in ℚ_N with a known bound N,
	// giving exact frequency-based computation ([11]'s row of Table 2).
	FreqRoundToBound
	// FreqExactSize recovers multiplicities with the exact size known,
	// giving multiset-based computation.
	FreqExactSize
)

// FreqAgent runs one average-consensus instance per value present in the
// network: the estimate vector x_i[ω] starts as the indicator of the own
// value and converges to the frequency ν(ω), because Metropolis updates are
// doubly stochastic and a joining agent contributes estimate 0 — the
// symmetric-communications route to frequency-based functions in dynamic
// networks (Table 2, after [11, 24]).
type FreqAgent struct {
	variant Variant
	boundN  int
	mode    FreqMode
	f       funcs.Func
	knownN  int

	deg int
	x   map[float64]float64
	out model.Value

	// universe is the engine-provided dense layout for vectorized runs:
	// sorted distinct input values, read-only (see model.VectorAgent).
	universe []float64
}

var (
	_ model.OutdegreeSender = (*FreqAgent)(nil)
	_ model.Broadcaster     = (*FreqAgent)(nil)
	_ model.VectorAgent     = (*FreqAgent)(nil)
)

// FreqConfig parameterizes NewFreqFactory.
type FreqConfig struct {
	// F is the function computed from the recovered frequencies.
	F funcs.Func
	// Variant selects the weight rule; MaxDegree runs under plain
	// symmetric communications, Standard/Lazy need outdegree awareness.
	Variant Variant
	// BoundN is the bound N ≥ n (required by MaxDegree and by
	// FreqRoundToBound).
	BoundN int
	// Mode selects the output reconstruction.
	Mode FreqMode
	// KnownN is the exact size (FreqExactSize).
	KnownN int
}

// NewFreqFactory validates cfg against Table 2's symmetric column and
// returns the factory.
func NewFreqFactory(cfg FreqConfig) (model.Factory, error) {
	switch cfg.Variant {
	case Standard, Lazy:
	case MaxDegree:
		if cfg.BoundN < 1 {
			return nil, fmt.Errorf("metropolis: MaxDegree needs a bound N ≥ 1, got %d", cfg.BoundN)
		}
	default:
		return nil, fmt.Errorf("metropolis: invalid variant %d", int(cfg.Variant))
	}
	switch cfg.Mode {
	case FreqApproximate:
		if !funcs.FrequencyBased.Contains(cfg.F.Class) {
			return nil, fmt.Errorf("metropolis: %q is %v; only frequency-based functions converge without size knowledge", cfg.F.Name, cfg.F.Class)
		}
	case FreqRoundToBound:
		if cfg.BoundN < 1 {
			return nil, fmt.Errorf("metropolis: FreqRoundToBound needs a bound N ≥ 1, got %d", cfg.BoundN)
		}
		if !funcs.FrequencyBased.Contains(cfg.F.Class) {
			return nil, fmt.Errorf("metropolis: %q is %v; with only a bound, only frequency-based functions are computable", cfg.F.Name, cfg.F.Class)
		}
	case FreqExactSize:
		if cfg.KnownN < 1 {
			return nil, fmt.Errorf("metropolis: FreqExactSize needs the size n ≥ 1, got %d", cfg.KnownN)
		}
	default:
		return nil, fmt.Errorf("metropolis: invalid frequency mode %d", int(cfg.Mode))
	}
	return func(in model.Input) model.Agent {
		return &FreqAgent{
			variant: cfg.Variant,
			boundN:  cfg.BoundN,
			mode:    cfg.Mode,
			f:       cfg.F,
			knownN:  cfg.KnownN,
			x:       map[float64]float64{in.Value: 1},
			out:     cfg.F.Eval(multiset.New(in.Value)),
		}
	}, nil
}

// SendOutdegree records the degree and broadcasts the estimates (degree-
// aware variants).
func (a *FreqAgent) SendOutdegree(outdeg int) model.Message {
	a.deg = outdeg
	return a.buildMsg(outdeg)
}

// Send broadcasts the estimates alone (MaxDegree under plain symmetric
// communications).
func (a *FreqAgent) Send() model.Message { return a.buildMsg(0) }

func (a *FreqAgent) buildMsg(deg int) model.Message {
	x := make(map[float64]float64, len(a.x))
	for k, v := range a.x {
		x[k] = v
	}
	return FreqMsg{X: x, D: deg}
}

// Receive applies the per-value Metropolis update. A value unknown to the
// agent joins with estimate 0, and a neighbour unaware of ω is treated as
// holding 0 — both ends of a link compute the same view of the exchange, so
// the per-instance sum is conserved and every estimate converges to ν(ω).
func (a *FreqAgent) Receive(msgs []model.Message) {
	incoming := make([]FreqMsg, 0, len(msgs))
	support := make(map[float64]bool, len(a.x))
	for w := range a.x {
		support[w] = true
	}
	for _, raw := range msgs {
		m, ok := raw.(FreqMsg)
		if !ok {
			continue
		}
		incoming = append(incoming, m)
		for w := range m.X {
			support[w] = true
		}
	}
	next := make(map[float64]float64, len(support))
	if a.variant == MaxDegree {
		// Factored form shared verbatim with the vectorized path (see
		// maxDegreeStep): sum the neighbours' estimates first, then apply
		// the 1/N-weighted correction once.
		for w := range support {
			xw := a.x[w] // 0 when joining
			var sum float64
			for _, m := range incoming {
				sum += m.X[w] // missing entries read as 0
			}
			next[w] = maxDegreeStep(xw, sum, len(incoming), a.boundN)
		}
	} else {
		for w := range support {
			xw := a.x[w] // 0 when joining
			sum := xw
			for _, m := range incoming {
				sum += a.weight(m.D) * (m.X[w] - xw) // missing entries read as 0
			}
			next[w] = sum
		}
	}
	a.x = next
	a.refreshOutput()
}

// InitVector reports width 2 per universe value — the estimate and an
// awareness flag — for the MaxDegree variant; Standard and Lazy decline,
// exactly as the plain Agent does. The flag reproduces the support-set
// semantics: a value enters an agent's estimate map when some neighbour
// runs its instance, even at estimate 0.
func (a *FreqAgent) InitVector(universe []float64) int {
	if a.variant != MaxDegree {
		return 0
	}
	a.universe = universe
	return 2 * len(universe)
}

// SendVector lays the estimates out densely; unaware values contribute
// exact-zero rows (estimates are non-negative, so adding them never flips
// a sign bit).
func (a *FreqAgent) SendVector(outdeg int, dst []float64) {
	for k, w := range a.universe {
		if x, aware := a.x[w]; aware {
			dst[2*k] = x
			dst[2*k+1] = 1
		} else {
			dst[2*k] = 0
			dst[2*k+1] = 0
		}
	}
}

// ReceiveVector applies the factored per-value MaxDegree update on the
// engine-summed rows — the same expression, on bit-identical operands, as
// the generic Receive.
func (a *FreqAgent) ReceiveVector(sum []float64, count int) {
	next := make(map[float64]float64, len(a.x))
	for k, w := range a.universe {
		xw, joined := a.x[w]
		if sum[2*k+1] == 0 && !joined {
			continue // ω not in support: no instance here yet
		}
		next[w] = maxDegreeStep(xw, sum[2*k], count, a.boundN)
	}
	a.x = next
	a.refreshOutput()
}

// Estimates returns a copy of the per-value estimates, for tests.
func (a *FreqAgent) Estimates() map[float64]float64 {
	out := make(map[float64]float64, len(a.x))
	for w, v := range a.x {
		out[w] = v
	}
	return out
}

func (a *FreqAgent) refreshOutput() {
	var (
		ms *reconstruct.Args
		ok bool
	)
	switch a.mode {
	case FreqApproximate:
		ms, ok = reconstruct.Approximate(a.x, 360360)
	case FreqRoundToBound:
		ms, ok = reconstruct.Rounded(a.x, a.boundN)
	case FreqExactSize:
		ms, ok = reconstruct.Counts(a.x, float64(a.knownN))
	}
	if !ok {
		return
	}
	a.out = a.f.Eval(ms)
}

// weight reuses the pairwise weight rule of the plain agent.
func (a *FreqAgent) weight(neighbourDeg int) float64 {
	plain := Agent{variant: a.variant, boundN: a.boundN, deg: a.deg}
	return plain.weight(neighbourDeg)
}

// Output returns the current output value.
func (a *FreqAgent) Output() model.Value { return a.out }
