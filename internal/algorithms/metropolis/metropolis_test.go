package metropolis

import (
	"math"
	"testing"

	"anonnet/internal/dynamic"
	"anonnet/internal/engine"
	"anonnet/internal/funcs"
	"anonnet/internal/graph"
	"anonnet/internal/model"
	"anonnet/internal/testutil"
)

func symSchedules(n int) map[string]dynamic.Schedule {
	return map[string]dynamic.Schedule{
		"bidi-ring":        dynamic.NewStatic(graph.BidirectionalRing(n)),
		"path":             dynamic.NewStatic(graph.Path(n)),
		"random-connected": &dynamic.RandomConnected{Vertices: n, ExtraEdges: 2, Seed: 3},
		"split-ring":       &dynamic.SplitRing{Vertices: n},
		"pairwise":         &dynamic.Pairwise{Vertices: n, Seed: 8},
	}
}

func TestAverageConsensusAllVariants(t *testing.T) {
	n := 6
	vals := []float64{3, 1, 4, 1, 5, 9}
	want := 23.0 / 6
	for _, tc := range []struct {
		name    string
		variant Variant
		kind    model.Kind
	}{
		{"standard", Standard, model.OutdegreeAware},
		{"lazy", Lazy, model.OutdegreeAware},
		{"maxdegree", MaxDegree, model.Symmetric},
	} {
		factory, err := NewFactory(tc.variant, n+2)
		if err != nil {
			t.Fatal(err)
		}
		for name, s := range symSchedules(n) {
			e := testutil.RunSchedule(t, s, tc.kind, testutil.Inputs(vals...), factory, 3000, 1)
			testutil.AllOutputsNear(t, e.Outputs(), want, 1e-6, tc.name+"/"+name)
		}
	}
}

func TestSumConservation(t *testing.T) {
	// Doubly stochastic updates preserve Σx exactly at every round.
	n := 5
	vals := []float64{10, 0, -3, 7, 2}
	factory, err := NewFactory(Standard, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunSchedule(t, &dynamic.RandomConnected{Vertices: n, ExtraEdges: 1, Seed: 5},
		model.OutdegreeAware, testutil.Inputs(vals...), factory, 0, 2)
	for r := 0; r < 60; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, o := range e.Outputs() {
			sum += o.(float64)
		}
		if math.Abs(sum-16) > 1e-9 {
			t.Fatalf("round %d: Σx = %v, want 16", r+1, sum)
		}
	}
}

func TestAsyncStartsTolerated(t *testing.T) {
	n := 5
	vals := []float64{2, 4, 6, 8, 10}
	factory, err := NewFactory(Standard, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(engine.Config{
		Schedule: dynamic.NewStatic(graph.BidirectionalRing(n)),
		Kind:     model.OutdegreeAware,
		Inputs:   testutil.Inputs(vals...),
		Factory:  factory,
		Starts:   []int{1, 4, 2, 7, 1},
		Seed:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4000; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	testutil.AllOutputsNear(t, e.Outputs(), 6, 1e-6, "async metropolis")
}

func TestLazySlowerButConverges(t *testing.T) {
	n := 6
	vals := []float64{0, 0, 0, 12, 0, 0}
	run := func(v Variant) int {
		factory, err := NewFactory(v, 0)
		if err != nil {
			t.Fatal(err)
		}
		e := testutil.RunSchedule(t, dynamic.NewStatic(graph.BidirectionalRing(n)),
			model.OutdegreeAware, testutil.Inputs(vals...), factory, 0, 7)
		res, err := engine.RunUntilClose(e, 2.0, model.Euclid, 1e-6, 20000)
		if err != nil || !res.Converged {
			t.Fatalf("variant %d did not converge: %v", v, err)
		}
		return res.Rounds
	}
	std, lazy := run(Standard), run(Lazy)
	if lazy <= std {
		t.Fatalf("lazy (%d rounds) should be slower than standard (%d rounds)", lazy, std)
	}
}

func TestMaxDegreeNeedsBound(t *testing.T) {
	if _, err := NewFactory(MaxDegree, 0); err == nil {
		t.Fatal("MaxDegree accepted without a bound")
	}
	if _, err := NewFactory(0, 5); err == nil {
		t.Fatal("invalid variant accepted")
	}
}

func TestFreqAgentRoundedExact(t *testing.T) {
	// Table 2, symmetric column, bound-known row ([11]): exact
	// frequency-based computation via per-value Metropolis + ℚ_N rounding.
	vals := []float64{1, 1, 1, 2, 2, 7}
	want := funcs.Average().FromVector(vals)
	factory, err := NewFreqFactory(FreqConfig{
		F: funcs.Average(), Variant: MaxDegree, BoundN: 9, Mode: FreqRoundToBound,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range symSchedules(6) {
		e := testutil.RunSchedule(t, s, model.Symmetric, testutil.Inputs(vals...), factory, 4000, 8)
		testutil.AllOutputsNear(t, e.Outputs(), want, 0, name)
	}
}

func TestFreqAgentExactSizeMultiset(t *testing.T) {
	vals := []float64{1, 1, 1, 2, 2, 7}
	factory, err := NewFreqFactory(FreqConfig{
		F: funcs.Sum(), Variant: MaxDegree, BoundN: 6, Mode: FreqExactSize, KnownN: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunSchedule(t, &dynamic.RandomConnected{Vertices: 6, ExtraEdges: 2, Seed: 10},
		model.Symmetric, testutil.Inputs(vals...), factory, 4000, 9)
	testutil.AllOutputsNear(t, e.Outputs(), 14, 0, "sum with n known")
}

func TestFreqAgentDegreeAwareVariant(t *testing.T) {
	vals := []float64{4, 4, 2}
	factory, err := NewFreqFactory(FreqConfig{
		F: funcs.Average(), Variant: Standard, Mode: FreqApproximate,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunSchedule(t, dynamic.NewStatic(graph.Path(3)),
		model.OutdegreeAware, testutil.Inputs(vals...), factory, 4000, 10)
	testutil.AllOutputsNear(t, e.Outputs(), 10.0/3, 1e-4, "approximate freq metropolis")
}

func TestFreqFactoryValidation(t *testing.T) {
	if _, err := NewFreqFactory(FreqConfig{F: funcs.Sum(), Variant: MaxDegree, BoundN: 5, Mode: FreqApproximate}); err == nil {
		t.Fatal("sum accepted in approximate mode")
	}
	if _, err := NewFreqFactory(FreqConfig{F: funcs.Average(), Variant: MaxDegree, BoundN: 5, Mode: FreqExactSize}); err == nil {
		t.Fatal("FreqExactSize accepted without n")
	}
	if _, err := NewFreqFactory(FreqConfig{F: funcs.Average(), Variant: MaxDegree, Mode: FreqApproximate}); err == nil {
		t.Fatal("MaxDegree accepted without bound")
	}
}

func TestFreqEstimatesSumToOne(t *testing.T) {
	// Per-value estimates are conserved and total mass is n, so the
	// per-agent estimates sum to 1 once all instances are known.
	vals := []float64{1, 2, 3, 4}
	factory, err := NewFreqFactory(FreqConfig{
		F: funcs.Average(), Variant: MaxDegree, BoundN: 6, Mode: FreqApproximate,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunSchedule(t, dynamic.NewStatic(graph.BidirectionalRing(4)),
		model.Symmetric, testutil.Inputs(vals...), factory, 50, 11)
	total := 0.0
	for i := 0; i < e.N(); i++ {
		for _, x := range e.Agent(i).(*FreqAgent).Estimates() {
			total += x
		}
	}
	if math.Abs(total-4) > 1e-9 {
		t.Fatalf("total estimate mass %v, want 4", total)
	}
}

func TestGrowingGapsMoreauRegime(t *testing.T) {
	// §6 (concluding remarks): with connectivity that never permanently
	// splits but has no finite dynamic diameter, the Metropolis family
	// still converges — Moreau's theorem regime. Communication happens
	// only at triangular-number rounds.
	n := 5
	vals := []float64{2, 4, 6, 8, 10}
	factory, err := NewFactory(Standard, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := &dynamic.GrowingGaps{Base: dynamic.NewStatic(graph.BidirectionalRing(n))}
	e := testutil.RunSchedule(t, s, model.OutdegreeAware, testutil.Inputs(vals...), factory, 0, 3)
	res, err := engine.RunUntilClose(e, 6.0, model.Euclid, 1e-4, 60000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("Metropolis did not converge under growing gaps (max err %g)", res.MaxErr)
	}
}
