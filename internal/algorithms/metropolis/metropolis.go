// Package metropolis implements the Metropolis and Lazy Metropolis average-
// consensus algorithms of Section 5: doubly stochastic gossip on symmetric
// dynamic networks. In the paper's taxonomy, Metropolis needs symmetric
// communications *and* outdegree awareness (each message carries the
// sender's current degree); the MaxDegree variant trades the degree
// exchange for a known bound N on the network size, covering the symmetric
// column of Table 2 when a bound is known. Both tolerate asynchronous
// starts and use no persistent memory.
package metropolis

import (
	"fmt"

	"anonnet/internal/model"
)

// Msg carries the sender's current estimate and degree.
type Msg struct {
	X float64
	D int
}

// Variant selects the weight rule.
type Variant int

// The implemented weight rules.
const (
	// Standard uses w_ij = 1/max(d_i, d_j) — the Metropolis weights, with
	// quadratic convergence on per-round-connected symmetric networks [10].
	Standard Variant = iota + 1
	// Lazy uses w_ij = 1/(2·max(d_i, d_j)) — the Lazy Metropolis rule
	// [30, 31], extending the quadratic bound to finite dynamic diameter.
	Lazy
	// MaxDegree uses w_ij = 1/N for a known bound N ≥ n, requiring no
	// degree exchange: the symmetric-communications variant ([11, 24],
	// O(n⁴) time).
	MaxDegree
)

// Agent is one Metropolis automaton: state is the single running estimate
// x_i, updated by x_i ← x_i + Σ_j w_ij (x_j − x_i) over the round's
// neighbours. The weights are symmetric (w_ij = w_ji) and sub-stochastic,
// so the update matrix is doubly stochastic and the sum Σx_i is invariant:
// all estimates converge to the initial average on symmetric networks of
// finite dynamic diameter.
type Agent struct {
	variant Variant
	boundN  int
	x       float64
	deg     int
}

var (
	_ model.OutdegreeSender = (*Agent)(nil)
	_ model.Broadcaster     = (*Agent)(nil)
	_ model.VectorAgent     = (*Agent)(nil)
)

// NewFactory returns a Metropolis agent factory. boundN is required (≥ 1)
// for the MaxDegree variant and ignored otherwise.
func NewFactory(variant Variant, boundN int) (model.Factory, error) {
	switch variant {
	case Standard, Lazy:
	case MaxDegree:
		if boundN < 1 {
			return nil, fmt.Errorf("metropolis: MaxDegree needs a bound N ≥ 1, got %d", boundN)
		}
	default:
		return nil, fmt.Errorf("metropolis: invalid variant %d", int(variant))
	}
	return func(in model.Input) model.Agent {
		return &Agent{variant: variant, boundN: boundN, x: in.Value}
	}, nil
}

// SendOutdegree records the degree and broadcasts (x, d); the Standard and
// Lazy variants run under outdegree awareness.
func (a *Agent) SendOutdegree(outdeg int) model.Message {
	a.deg = outdeg
	return Msg{X: a.x, D: outdeg}
}

// Send broadcasts the estimate alone, for the MaxDegree variant under plain
// symmetric communications (the degree field is unused there).
func (a *Agent) Send() model.Message {
	return Msg{X: a.x, D: 0}
}

// Receive applies the consensus update. The agent's own message contributes
// (x_i − x_i) = 0, so anonymity costs nothing: no self-identification is
// needed. The MaxDegree variant — whose weight 1/N does not depend on the
// sender — factors the update through the plain message sum, the exact
// expression the vectorized engine evaluates, so both paths round floats
// identically.
func (a *Agent) Receive(msgs []model.Message) {
	if a.variant == MaxDegree {
		var sum float64
		count := 0
		for _, raw := range msgs {
			m, ok := raw.(Msg)
			if !ok {
				continue
			}
			sum += m.X
			count++
		}
		a.x = maxDegreeStep(a.x, sum, count, a.boundN)
		return
	}
	sum := 0.0
	for _, raw := range msgs {
		m, ok := raw.(Msg)
		if !ok {
			continue
		}
		sum += a.weight(m.D) * (m.X - a.x)
	}
	a.x += sum
}

// maxDegreeStep is the factored MaxDegree update x + (Σxⱼ − c·x)/N. The
// generic and vectorized paths both evaluate exactly this expression on the
// same operands, which is what makes their traces bit-identical.
func maxDegreeStep(x, sum float64, count, boundN int) float64 {
	return x + (sum-float64(count)*x)/float64(boundN)
}

// InitVector reports width 1 (the running estimate) for the MaxDegree
// variant, whose constant weight 1/N makes the update linear in the message
// sum. Standard and Lazy weights depend on each sender's degree — the
// update is not a function of the sum — so they decline vectorization.
func (a *Agent) InitVector(universe []float64) int {
	if a.variant != MaxDegree {
		return 0
	}
	return 1
}

// SendVector writes the estimate, matching Send.
func (a *Agent) SendVector(outdeg int, dst []float64) { dst[0] = a.x }

// ReceiveVector applies the factored MaxDegree update.
func (a *Agent) ReceiveVector(sum []float64, count int) {
	a.x = maxDegreeStep(a.x, sum[0], count, a.boundN)
}

// weight returns w_ij for a neighbour of degree d_j. For the degree-aware
// variants both endpoints compute the same value from the exchanged
// degrees; for MaxDegree the common weight is 1/N.
func (a *Agent) weight(neighbourDeg int) float64 {
	switch a.variant {
	case Standard:
		return 1 / float64(maxInt(a.deg, neighbourDeg))
	case Lazy:
		return 1 / float64(2*maxInt(a.deg, neighbourDeg))
	default:
		return 1 / float64(a.boundN)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Output returns the running estimate.
func (a *Agent) Output() model.Value { return a.x }
