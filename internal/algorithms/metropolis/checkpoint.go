package metropolis

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"anonnet/internal/model"
)

// Checkpoint support (model.Checkpointable) for the Metropolis automata;
// see the pushsum package's checkpoint.go for the contract's rationale.
// gob keeps float64 state bit-exact, and the message types are registered
// so delayed in-flight messages serialize under fault plans.

func init() {
	gob.Register(Msg{})
	gob.Register(FreqMsg{})
}

var (
	_ model.Checkpointable = (*Agent)(nil)
	_ model.Checkpointable = (*FreqAgent)(nil)
)

// agentState is Agent's dynamic state: the running estimate and the degree
// recorded by the last send (the weight rule reads it).
type agentState struct {
	X   float64
	Deg int
}

// MarshalState serializes the running estimate and recorded degree.
func (a *Agent) MarshalState() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(agentState{X: a.x, Deg: a.deg}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalState restores the running estimate and recorded degree.
func (a *Agent) UnmarshalState(data []byte) error {
	var st agentState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("metropolis: Agent state: %w", err)
	}
	a.x, a.deg = st.X, st.Deg
	return nil
}

// freqAgentState is FreqAgent's dynamic state: the recorded degree, the
// per-value estimates, and the last good output (reconstruction failures
// keep the previous output, so it is state).
type freqAgentState struct {
	Deg int
	X   map[float64]float64
	Out float64
}

// MarshalState serializes the per-value estimates and the output.
func (a *FreqAgent) MarshalState() ([]byte, error) {
	out, ok := a.out.(float64)
	if !ok {
		return nil, fmt.Errorf("metropolis: FreqAgent output is %T, not float64", a.out)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(freqAgentState{Deg: a.deg, X: a.x, Out: out}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalState restores the per-value estimates and the output; the
// configuration and universe are the fresh instance's own.
func (a *FreqAgent) UnmarshalState(data []byte) error {
	var st freqAgentState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("metropolis: FreqAgent state: %w", err)
	}
	if st.X == nil {
		st.X = make(map[float64]float64)
	}
	a.deg, a.x, a.out = st.Deg, st.X, st.Out
	return nil
}
