package gossip

import (
	"testing"

	"anonnet/internal/dynamic"
	"anonnet/internal/engine"
	"anonnet/internal/funcs"
	"anonnet/internal/graph"
	"anonnet/internal/model"
	"anonnet/internal/testutil"
)

func TestRejectsNonSetBased(t *testing.T) {
	for _, f := range []funcs.Func{funcs.Average(), funcs.Sum(), funcs.Mode()} {
		if _, err := NewFactory(f); err == nil {
			t.Errorf("gossip accepted %v function %q", f.Class, f.Name)
		}
	}
}

func TestComputesSetBasedOnStaticGraphs(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9}
	for _, f := range []funcs.Func{funcs.Min(), funcs.Max(), funcs.SupportSize(), funcs.Range()} {
		factory, err := NewFactory(f)
		if err != nil {
			t.Fatal(err)
		}
		want := f.FromVector(vals)
		for _, kind := range []model.Kind{model.SimpleBroadcast, model.OutdegreeAware, model.OutputPortAware} {
			e := testutil.RunStatic(t, graph.Ring(6), kind, testutil.Inputs(vals...), factory, 10, 1)
			testutil.AllOutputsEqual(t, e.Outputs(), want, f.Name+"/"+kind.String())
		}
		e := testutil.RunStatic(t, graph.BidirectionalRing(6), model.Symmetric, testutil.Inputs(vals...), factory, 10, 1)
		testutil.AllOutputsEqual(t, e.Outputs(), want, f.Name+"/symmetric")
	}
}

func TestStabilizesWithinDiameterRounds(t *testing.T) {
	g := graph.Ring(9) // diameter 8
	vals := []float64{0, 0, 0, 0, 0, 0, 0, 0, 42}
	factory, err := NewFactory(funcs.Max())
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunStatic(t, g, model.SimpleBroadcast, testutil.Inputs(vals...), factory, 0, 2)
	res, err := engine.RunUntilStable(e, model.Discrete, 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable {
		t.Fatal("gossip did not stabilize")
	}
	if res.StabilizedAt > g.Diameter() {
		t.Fatalf("stabilized at round %d, want ≤ diameter %d", res.StabilizedAt, g.Diameter())
	}
	testutil.AllOutputsEqual(t, res.Outputs, 42.0, "max")
}

func TestDynamicFiniteDiameter(t *testing.T) {
	// Table 2, broadcast row: set-based functions are computable in
	// dynamic networks of finite dynamic diameter.
	vals := []float64{5, 3, 8, 1, 9, 2, 7, 4}
	factory, err := NewFactory(funcs.Max())
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]dynamic.Schedule{
		"split-ring": &dynamic.SplitRing{Vertices: 8},
		"pairwise":   &dynamic.Pairwise{Vertices: 8, Seed: 7},
		"random":     &dynamic.RandomConnected{Vertices: 8, ExtraEdges: 1, Seed: 2},
	} {
		e := testutil.RunSchedule(t, s, model.SimpleBroadcast, testutil.Inputs(vals...), factory, 80, 3)
		testutil.AllOutputsEqual(t, e.Outputs(), 9.0, name)
	}
}

func TestAsyncStarts(t *testing.T) {
	vals := []float64{1, 7, 3, 5}
	factory, err := NewFactory(funcs.Max())
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(engine.Config{
		Schedule: dynamic.NewStatic(graph.BidirectionalRing(4)),
		Kind:     model.SimpleBroadcast,
		Inputs:   testutil.Inputs(vals...),
		Factory:  factory,
		Starts:   []int{1, 5, 2, 3},
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 20; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	testutil.AllOutputsEqual(t, e.Outputs(), 7.0, "async gossip")
}

func TestNotSelfStabilizing(t *testing.T) {
	// Gossip never forgets: corrupted junk persists — the documented
	// failure mode (flooding is not self-stabilizing).
	vals := []float64{1, 2, 3}
	factory, err := NewFactory(funcs.Max())
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunStatic(t, graph.Ring(3), model.SimpleBroadcast, testutil.Inputs(vals...), factory, 10, 5)
	if got := e.Corrupt(999); got != 3 {
		t.Fatalf("corrupted %d agents, want 3", got)
	}
	for r := 0; r < 20; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for _, o := range e.Outputs() {
		if o.(float64) == 3.0 {
			t.Fatal("gossip forgot the junk value — it should not be able to")
		}
	}
}

func TestForeignMessagesIgnored(t *testing.T) {
	factory, err := NewFactory(funcs.Max())
	if err != nil {
		t.Fatal(err)
	}
	a := factory(model.Input{Value: 5}).(*Agent)
	a.Receive([]model.Message{"not a value slice", 42, []float64{7}})
	if got := a.Output().(float64); got != 7 {
		t.Fatalf("output %v, want 7", got)
	}
}
