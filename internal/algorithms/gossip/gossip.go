// Package gossip implements the simple gossip (flooding) algorithm: each
// agent repeatedly broadcasts the set of input values it has heard of and
// unions what it receives. Within D (dynamic-diameter) rounds every agent
// holds the full set of input values, so any set-based function is
// computable — the positive half of the simple-broadcast row of Tables 1
// and 2. The impossibility halves (nothing beyond set-based is computable
// by broadcast) are exercised by the core package's fibration witnesses.
package gossip

import (
	"fmt"
	"sort"

	"anonnet/internal/funcs"
	"anonnet/internal/model"
	"anonnet/internal/multiset"
)

// Agent is one gossip automaton. It implements the senders of all four
// communication models, since a broadcast algorithm runs unchanged in the
// richer models (it simply ignores the extra information).
type Agent struct {
	f    funcs.Func
	seen map[float64]bool
}

var (
	_ model.Broadcaster     = (*Agent)(nil)
	_ model.OutdegreeSender = (*Agent)(nil)
	_ model.PortSender      = (*Agent)(nil)
	_ model.Corruptible     = (*Agent)(nil)
)

// NewFactory returns a factory of gossip agents computing f, which must be
// set-based: gossip forgets multiplicities by construction, so a larger
// class would silently compute the wrong function.
func NewFactory(f funcs.Func) (model.Factory, error) {
	if f.Class != funcs.SetBased {
		return nil, fmt.Errorf("gossip: function %q is %v, need set-based", f.Name, f.Class)
	}
	return func(in model.Input) model.Agent {
		return &Agent{f: f, seen: map[float64]bool{in.Value: true}}
	}, nil
}

// Send broadcasts the sorted set of values seen so far.
func (a *Agent) Send() model.Message {
	vals := make([]float64, 0, len(a.seen))
	for v := range a.seen {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	return vals
}

// SendOutdegree ignores the outdegree: gossip is graph-invariant (§2.2).
func (a *Agent) SendOutdegree(int) model.Message { return a.Send() }

// SendPorts sends the same set on every port.
func (a *Agent) SendPorts(outdeg int) []model.Message {
	m := a.Send()
	out := make([]model.Message, outdeg)
	for i := range out {
		out[i] = m
	}
	return out
}

// Receive unions the received sets into the local one.
func (a *Agent) Receive(msgs []model.Message) {
	for _, m := range msgs {
		vals, ok := m.([]float64)
		if !ok {
			continue // foreign message; gossip is tolerant by nature
		}
		for _, v := range vals {
			a.seen[v] = true
		}
	}
}

// Output evaluates f on the set of values seen (each with multiplicity 1 —
// immaterial for a set-based f).
func (a *Agent) Output() model.Value {
	vals := make([]float64, 0, len(a.seen))
	for v := range a.seen {
		vals = append(vals, v)
	}
	return a.f.Eval(multiset.New(vals...))
}

// Corrupt injects junk values into the seen-set. Gossip never forgets, so
// it is *not* self-stabilizing — the self-stabilization tests demonstrate
// exactly this failure, as the paper notes for flooding-style algorithms.
func (a *Agent) Corrupt(junk int64) {
	a.seen[float64(junk%1000)+0.5] = true
}
