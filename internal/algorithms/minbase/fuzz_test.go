package minbase

import (
	"math"
	"testing"

	"anonnet/internal/model"
)

// FuzzDecodeInput checks the codec never round-trips inconsistently and
// rejects garbage gracefully.
func FuzzDecodeInput(f *testing.F) {
	f.Add(EncodeInput(model.Input{Value: 1.5}))
	f.Add(EncodeInput(model.Input{Value: -3, Leader: true}))
	f.Add("garbage")
	f.Add("0x1p+00|maybe")
	f.Add("|true")
	f.Fuzz(func(t *testing.T, s string) {
		in, err := DecodeInput(s)
		if err != nil {
			return // rejection is fine; no panic is the property
		}
		if math.IsNaN(in.Value) {
			return // NaN never round-trips through ==
		}
		// Anything accepted must round-trip exactly.
		back, err := DecodeInput(EncodeInput(in))
		if err != nil || back != in {
			t.Fatalf("round trip failed for %q → %+v → %+v (%v)", s, in, back, err)
		}
	})
}

// FuzzMergeMsg feeds arbitrary message shapes to an agent: no panic, no
// acceptance of uncertified entries.
func FuzzMergeMsg(f *testing.F) {
	f.Add("lbl", "prev", 2, 1)
	f.Add("", "", -1, 0)
	f.Fuzz(func(t *testing.T, label, prev string, out, port int) {
		a, err := NewAgent(model.OutdegreeAware, model.Input{Value: 1})
		if err != nil {
			t.Fatal(err)
		}
		sig := Sig{Value: "v", Out: out, Prev: prev}
		m := &Msg{
			Epoch:   0,
			Hist:    []string{label},
			Port:    port,
			Entries: []Entry{{Key: Key{Level: 0, Label: label}, Sig: sig}},
		}
		ok := a.mergeMsg(m)
		if ok && label != Label(sig) {
			t.Fatalf("uncertified entry accepted: label %q vs %q", label, Label(sig))
		}
		if a.table.Has(Key{Level: 0, Label: label}) && label != Label(sig) {
			t.Fatal("forged entry entered the table")
		}
	})
}
