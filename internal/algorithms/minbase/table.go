package minbase

// Table is the append-only signature store gossiped by the agents. Entries
// are immutable and self-certifying (label = hash(sig)), so a message can
// carry a zero-copy snapshot of the entry slice: the owner only ever
// appends, and receivers only read the prefix captured at send time.
type Table struct {
	entries []Entry
	index   map[Key]int
}

// Entry is one (level, label) → signature record.
type Entry struct {
	Key Key
	Sig Sig
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{index: make(map[Key]int)}
}

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.entries) }

// Get looks up a signature.
func (t *Table) Get(k Key) (Sig, bool) {
	i, ok := t.index[k]
	if !ok {
		return Sig{}, false
	}
	return t.entries[i].Sig, true
}

// Has reports whether the key is present.
func (t *Table) Has(k Key) bool {
	_, ok := t.index[k]
	return ok
}

// add inserts a (validated) entry; it reports whether the entry was new.
func (t *Table) add(k Key, s Sig) bool {
	if _, dup := t.index[k]; dup {
		return false
	}
	t.index[k] = len(t.entries)
	t.entries = append(t.entries, Entry{Key: k, Sig: s})
	return true
}

// Snapshot returns a zero-copy view of the current entries for inclusion
// in a message. The returned slice must be treated as immutable.
func (t *Table) Snapshot() []Entry { return t.entries }

// ByLevel groups the entries by level, for candidate extraction.
func (t *Table) ByLevel() map[int]map[string]Sig {
	levels := make(map[int]map[string]Sig)
	for _, e := range t.entries {
		m := levels[e.Key.Level]
		if m == nil {
			m = make(map[string]Sig)
			levels[e.Key.Level] = m
		}
		m[e.Key.Label] = e.Sig
	}
	return levels
}

// validate re-checks every entry's certification (label = hash(sig)); used
// by the periodic self-audit that detects state corruption.
func (t *Table) validate() bool {
	if len(t.entries) != len(t.index) {
		return false
	}
	for _, e := range t.entries {
		if e.Key.Level < 0 || Label(e.Sig) != e.Key.Label {
			return false
		}
		if i, ok := t.index[e.Key]; !ok || t.entries[i].Key != e.Key {
			return false
		}
	}
	return true
}
