// Package minbase implements the distributed minimum-base computation at
// the core of §4.2 (after Boldi–Vigna [8]): in a static strongly connected
// anonymous network, every agent eventually knows the minimum base of the
// (valued) network graph — the quotient by the coarsest stable partition —
// and from round n + D onwards its candidate is correct forever.
//
// Views are represented by hash labels: the label of an agent at level ℓ is
// a 128-bit hash of (its input value, its outdegree, its own level-(ℓ-1)
// label, and the multiset of its in-neighbours' level-(ℓ-1) labels, with
// ports in the output-port-aware model). Agents gossip the signature table
// (level, label) → signature; each agent extracts a candidate base from the
// deepest stable stretch of levels of its table (see candidate.go). Labels
// are self-certifying — label = hash(signature) — which is what the reset
// machinery of agent.go uses to recover from state corruption.
//
// DESIGN.md §6 records the two deliberate substitutions: exact view trees →
// hash labels (collision probability ≈ 2⁻⁶⁴ per pair, negligible at
// simulation scale), and Boldi–Vigna's finite-state self-stabilization →
// epoch-numbered reset waves recovering from random corruption.
package minbase

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"anonnet/internal/model"
)

// EncodeInput canonically encodes an agent input (value, leader flag) as
// the vertex label of the valued graph.
func EncodeInput(in model.Input) string {
	// 'x' (hex) formatting is exact for float64, so distinct values never
	// share a label.
	return strconv.FormatFloat(in.Value, 'x', -1, 64) + "|" + strconv.FormatBool(in.Leader)
}

// DecodeInput inverts EncodeInput.
func DecodeInput(s string) (model.Input, error) {
	val, leader, ok := strings.Cut(s, "|")
	if !ok {
		return model.Input{}, fmt.Errorf("minbase: malformed input label %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return model.Input{}, fmt.Errorf("minbase: malformed value in label %q: %v", s, err)
	}
	l, err := strconv.ParseBool(leader)
	if err != nil {
		return model.Input{}, fmt.Errorf("minbase: malformed leader flag in label %q: %v", s, err)
	}
	return model.Input{Value: v, Leader: l}, nil
}

// InRef is one group of a signature's in-neighbourhood: Count in-edges from
// neighbours labelled Prev at the previous level, on port Port (0 outside
// the output-port model).
type InRef struct {
	Prev  string
	Port  int
	Count int
}

// Sig is the signature of a view class at some level ℓ ≥ 1: the defining
// data of the refinement step. Label(sig) is the class's label at ℓ.
// Level-0 signatures have only Value set (and Out = -1).
type Sig struct {
	// Value is the agent's encoded input (vertex valuation).
	Value string
	// Out is the agent's outdegree (self-loop included), or -1 if not yet
	// known (level 0).
	Out int
	// Prev is the agent's own label at level ℓ-1 ("" at level 0).
	Prev string
	// In lists the in-neighbour labels at ℓ-1, grouped and sorted by
	// (Prev, Port) (nil at level 0).
	In []InRef
}

// canonical returns the canonical serialization hashed by Label.
func (s Sig) canonical() string {
	var b strings.Builder
	b.WriteString("V=")
	b.WriteString(s.Value)
	b.WriteString(";O=")
	b.WriteString(strconv.Itoa(s.Out))
	b.WriteString(";P=")
	b.WriteString(s.Prev)
	b.WriteString(";I=")
	for _, r := range s.In {
		b.WriteString(r.Prev)
		b.WriteByte('/')
		b.WriteString(strconv.Itoa(r.Port))
		b.WriteByte('*')
		b.WriteString(strconv.Itoa(r.Count))
		b.WriteByte(',')
	}
	return b.String()
}

// Label returns the 128-bit hash label of a signature, as 32 hex
// characters. Labels are self-certifying: a table entry (level, label, sig)
// is valid iff label == Label(sig).
func Label(s Sig) string {
	h := fnv.New128a()
	h.Write([]byte(s.canonical()))
	return fmt.Sprintf("%x", h.Sum(nil))
}

// groupRefs builds the sorted, grouped In list from raw (label, port)
// observations.
func groupRefs(raw []refObs) []InRef {
	type key struct {
		prev string
		port int
	}
	counts := make(map[key]int, len(raw))
	for _, r := range raw {
		counts[key{r.label, r.port}]++
	}
	out := make([]InRef, 0, len(counts))
	for k, c := range counts {
		out = append(out, InRef{Prev: k.prev, Port: k.port, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prev != out[j].Prev {
			return out[i].Prev < out[j].Prev
		}
		return out[i].Port < out[j].Port
	})
	return out
}

type refObs struct {
	label string
	port  int
}

// Key identifies a view class in the gossiped table.
type Key struct {
	Level int
	Label string
}

// Msg is the per-round message: the sender's current epoch, its full label
// history, the port the copy is sent on (output-port model only), and a
// snapshot of its signature table. Hist and Entries are zero-copy views of
// append-only state and must be treated as immutable — the engines deliver
// the same Msg value to several recipients.
type Msg struct {
	Epoch   int64
	Hist    []string
	Port    int
	Entries []Entry
}
