package minbase

import (
	"math/rand"
	"strconv"
	"testing"

	"anonnet/internal/dynamic"
	"anonnet/internal/engine"
	"anonnet/internal/fibration"
	"anonnet/internal/graph"
	"anonnet/internal/model"
	"anonnet/internal/multiset"
	"anonnet/internal/testutil"
)

func TestEncodeDecodeInput(t *testing.T) {
	cases := []model.Input{
		{Value: 0}, {Value: 1.5}, {Value: -3.25, Leader: true},
		{Value: 0.1}, {Value: 1e300}, {Value: -0},
	}
	for _, in := range cases {
		got, err := DecodeInput(EncodeInput(in))
		if err != nil {
			t.Fatalf("decode(%v): %v", in, err)
		}
		if got != in {
			t.Fatalf("round trip %v → %v", in, got)
		}
	}
	if _, err := DecodeInput("garbage"); err == nil {
		t.Fatal("DecodeInput accepted garbage")
	}
}

func TestLabelDeterministicAndDiscriminating(t *testing.T) {
	s1 := Sig{Value: "v", Out: 2, Prev: "p", In: []InRef{{Prev: "a", Port: 0, Count: 2}}}
	s2 := Sig{Value: "v", Out: 2, Prev: "p", In: []InRef{{Prev: "a", Port: 0, Count: 2}}}
	if Label(s1) != Label(s2) {
		t.Fatal("equal signatures got different labels")
	}
	s3 := s1
	s3.Out = 3
	if Label(s1) == Label(s3) {
		t.Fatal("different signatures got equal labels")
	}
	s4 := Sig{Value: "v", Out: 2, Prev: "p", In: []InRef{{Prev: "a", Port: 0, Count: 1}, {Prev: "a", Port: 1, Count: 1}}}
	if Label(s1) == Label(s4) {
		t.Fatal("different in-structures got equal labels")
	}
}

func TestNewAgentRejectsBroadcast(t *testing.T) {
	if _, err := NewAgent(model.SimpleBroadcast, model.Input{}); err == nil {
		t.Fatal("minbase should reject the simple-broadcast model")
	}
	if _, err := NewFactory(model.SimpleBroadcast); err == nil {
		t.Fatal("NewFactory should reject the simple-broadcast model")
	}
}

// trueMultiset returns the input-value multiset of the network.
func trueMultiset(inputs []model.Input) *multiset.Multiset[float64] {
	m := multiset.New[float64]()
	for _, in := range inputs {
		m.Add(in.Value)
	}
	return m
}

// centralizedBaseSize computes the ground-truth minimum base size via the
// fibration package, with the valuation appropriate to the model.
func centralizedBaseSize(t *testing.T, g *graph.Graph, kind model.Kind, inputs []model.Input) int {
	t.Helper()
	if kind == model.OutputPortAware && !g.PortsValid() {
		g = g.AssignPorts()
	}
	labels := make([]string, g.N())
	for v := range labels {
		labels[v] = EncodeInput(inputs[v]) + "|od=" + strconv.Itoa(g.OutDegree(v))
	}
	fib, err := fibration.MinimumBase(g, labels)
	if err != nil {
		t.Fatalf("centralized minimum base: %v", err)
	}
	return fib.Base.N()
}

// minbaseWorkloads enumerates the static networks used across the minbase
// and freqcalc tests. All are strongly connected with self-loops.
type workload struct {
	name   string
	g      *graph.Graph
	inputs []model.Input
	sym    bool // usable under the symmetric model
}

func minbaseWorkloads() []workload {
	rng := rand.New(rand.NewSource(17))
	return []workload{
		{"uniform-ring", graph.Ring(5), testutil.Inputs(2, 2, 2, 2, 2), false},
		{"alt-ring", graph.Ring(6), testutil.Inputs(1, 2, 1, 2, 1, 2), false},
		{"bidi-ring", graph.BidirectionalRing(6), testutil.Inputs(1, 2, 1, 2, 1, 2), true},
		{"star", graph.Star(5), testutil.Inputs(9, 4, 4, 4, 4), true},
		{"path", graph.Path(4), testutil.Inputs(1, 2, 2, 1), true},
		{"hypercube", graph.Hypercube(3), testutil.Inputs(1, 1, 1, 1, 1, 1, 1, 1), true},
		{"torus", graph.Torus(2, 3), testutil.Inputs(3, 3, 3, 3, 3, 3), true},
		{"random-digraph", graph.RandomStronglyConnected(7, 6, rng), testutil.Inputs(1, 5, 5, 2, 1, 5, 2), false},
		{"random-sym", graph.RandomSymmetricConnected(7, 4, rng), testutil.Inputs(4, 4, 1, 1, 4, 4, 1), true},
		{"distinct-values", graph.Ring(4), testutil.Inputs(1, 2, 3, 4), false},
	}
}

func roundsFor(g *graph.Graph) int {
	return 3*g.N() + 4*g.Diameter() + 12
}

func TestDistributedBaseMatchesCentralized(t *testing.T) {
	for _, w := range minbaseWorkloads() {
		for _, kind := range testutil.CapableKinds() {
			if kind == model.Symmetric && !w.sym {
				continue
			}
			factory, err := NewFactory(kind)
			if err != nil {
				t.Fatal(err)
			}
			e := testutil.RunStatic(t, w.g, kind, w.inputs, factory, roundsFor(w.g), 1)
			wantSize := centralizedBaseSize(t, w.g, kind, w.inputs)
			for i := 0; i < e.N(); i++ {
				a := e.Agent(i).(*Agent)
				base, ok := a.CandidateBase()
				if !ok {
					t.Fatalf("%s/%v: agent %d has no candidate after %d rounds", w.name, kind, i, e.Round())
				}
				if base.N() != wantSize {
					t.Errorf("%s/%v: agent %d base has %d vertices, want %d (%v)",
						w.name, kind, i, base.N(), wantSize, base)
					break
				}
			}
		}
	}
}

func TestCandidateStabilizesWithinBound(t *testing.T) {
	// The §4.2 guarantee is stabilization by round n + D (for the
	// infinite-state algorithm); our extractor adds a safety margin, so we
	// check stabilization within n + 3D + 4 and report the measured round
	// in EXPERIMENTS.md via the figures harness.
	for _, w := range minbaseWorkloads() {
		kind := model.OutdegreeAware
		factory, err := NewFactory(kind)
		if err != nil {
			t.Fatal(err)
		}
		n, d := w.g.N(), w.g.Diameter()
		bound := n + 3*d + 4
		e := testutil.RunStatic(t, w.g, kind, w.inputs, factory, bound, 2)
		snapshot := make([]*Base, e.N())
		for i := 0; i < e.N(); i++ {
			base, ok := e.Agent(i).(*Agent).CandidateBase()
			if !ok {
				t.Fatalf("%s: agent %d has no candidate at round %d", w.name, i, bound)
			}
			snapshot[i] = base
		}
		// Run on: the candidate must not change (up to isomorphism — bases
		// are unique only up to isomorphism) for another 2(n+d) rounds.
		for r := 0; r < 2*(n+d); r++ {
			if err := e.Step(); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < e.N(); i++ {
			base, _ := e.Agent(i).(*Agent).CandidateBase()
			if !base.Isomorphic(snapshot[i]) {
				t.Errorf("%s: agent %d candidate changed after round %d:\n then: %s\n now:  %s",
					w.name, i, bound, snapshot[i], base)
			}
		}
	}
}

func TestAgentsAgreeOnBase(t *testing.T) {
	for _, w := range minbaseWorkloads() {
		factory, err := NewFactory(model.OutdegreeAware)
		if err != nil {
			t.Fatal(err)
		}
		e := testutil.RunStatic(t, w.g, model.OutdegreeAware, w.inputs, factory, roundsFor(w.g), 3)
		var first *Base
		for i := 0; i < e.N(); i++ {
			base, ok := e.Agent(i).(*Agent).CandidateBase()
			if !ok {
				t.Fatalf("%s: agent %d has no candidate", w.name, i)
			}
			if i == 0 {
				first = base
			} else if !base.Isomorphic(first) {
				t.Errorf("%s: agents 0 and %d disagree:\n%s\n%s", w.name, i, first, base)
			}
		}
	}
}

func TestAsyncStartsTolerated(t *testing.T) {
	g := graph.Ring(6)
	inputs := testutil.Inputs(1, 2, 1, 2, 1, 2)
	factory, err := NewFactory(model.OutdegreeAware)
	if err != nil {
		t.Fatal(err)
	}
	starts := []int{1, 4, 2, 7, 1, 3}
	e, err := engine.New(engine.Config{
		Schedule: dynamic.NewStatic(g),
		Kind:     model.OutdegreeAware,
		Inputs:   inputs,
		Factory:  factory,
		Starts:   starts,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 60; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < e.N(); i++ {
		base, ok := e.Agent(i).(*Agent).CandidateBase()
		if !ok {
			t.Fatalf("agent %d has no candidate", i)
		}
		if base.N() != 2 {
			t.Errorf("agent %d base has %d vertices, want 2 (%v)", i, base.N(), base)
		}
	}
}

func TestCorruptionRecovery(t *testing.T) {
	g := graph.Ring(6)
	inputs := testutil.Inputs(1, 2, 1, 2, 1, 2)
	factory, err := NewFactory(model.OutdegreeAware)
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunStatic(t, g, model.OutdegreeAware, inputs, factory, 30, 4)
	// Scramble two agents mid-run.
	e.Agent(1).(model.Corruptible).Corrupt(12345)
	e.Agent(4).(model.Corruptible).Corrupt(98765)
	// The reset wave floods and recomputation finishes within
	// ~2(n + D) extra rounds.
	for r := 0; r < 80; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < e.N(); i++ {
		a := e.Agent(i).(*Agent)
		if a.Epoch() == 0 {
			t.Errorf("agent %d never adopted the reset epoch", i)
		}
		base, ok := a.CandidateBase()
		if !ok {
			t.Fatalf("agent %d has no candidate after recovery", i)
		}
		if base.N() != 2 {
			t.Errorf("agent %d base has %d vertices after recovery, want 2 (%v)", i, base.N(), base)
		}
	}
}

func TestMergeMsgRejectsForgery(t *testing.T) {
	a, err := NewAgent(model.OutdegreeAware, model.Input{Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	sig := Sig{Value: "v", Out: 2}
	good := &Msg{
		Epoch:   0,
		Hist:    []string{Label(sig)},
		Entries: []Entry{{Key: Key{Level: 0, Label: Label(sig)}, Sig: sig}},
	}
	if !a.mergeMsg(good) {
		t.Fatal("valid message rejected")
	}
	bad := &Msg{
		Epoch:   0,
		Hist:    []string{"deadbeef"},
		Entries: []Entry{{Key: Key{Level: 0, Label: "deadbeef"}, Sig: sig}},
	}
	if a.mergeMsg(bad) {
		t.Fatal("forged label accepted")
	}
	if a.table.Has(Key{Level: 0, Label: "deadbeef"}) {
		t.Fatal("forged entry entered the table")
	}
	missing := &Msg{Epoch: 0, Hist: []string{"nope"}}
	if a.mergeMsg(missing) {
		t.Fatal("unbacked history accepted")
	}
}

func TestExtractBaseEmptyTable(t *testing.T) {
	if _, ok := ExtractBase(nil); ok {
		t.Fatal("ExtractBase(nil) returned a base")
	}
}

func TestTableBasics(t *testing.T) {
	tb := NewTable()
	sig := Sig{Value: "v", Out: 1}
	k := Key{Level: 0, Label: Label(sig)}
	if !tb.add(k, sig) {
		t.Fatal("add failed")
	}
	if tb.add(k, sig) {
		t.Fatal("duplicate add succeeded")
	}
	if got, ok := tb.Get(k); !ok || got.Value != sig.Value || got.Out != sig.Out {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if !tb.validate() {
		t.Fatal("fresh table invalid")
	}
	// In-place corruption must be caught by validate.
	tb.entries[0].Key.Label = "junk"
	if tb.validate() {
		t.Fatal("corrupted table validated")
	}
}

func TestDistributedMatchesReferenceRandomized(t *testing.T) {
	// Randomized sweep: on random strongly connected digraphs with random
	// small-alphabet valuations, every agent's candidate is isomorphic to
	// the centralized reference base.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(6)
		g := graph.RandomStronglyConnected(n, rng.Intn(2*n), rng)
		inputs := make([]model.Input, n)
		for i := range inputs {
			inputs[i] = model.Input{Value: float64(1 + rng.Intn(3))}
		}
		want, _, err := BaseOfGraph(g, inputs)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		factory, err := NewFactory(model.OutdegreeAware)
		if err != nil {
			t.Fatal(err)
		}
		e := testutil.RunStatic(t, g, model.OutdegreeAware, inputs, factory, roundsFor(g), int64(trial))
		for i := 0; i < e.N(); i++ {
			got, ok := e.Agent(i).(*Agent).CandidateBase()
			if !ok {
				t.Fatalf("trial %d: agent %d has no candidate", trial, i)
			}
			if !got.Isomorphic(want) {
				t.Fatalf("trial %d: agent %d base %v not isomorphic to reference %v\ngraph: %v",
					trial, i, got, want, g)
			}
		}
	}
}

func TestReferenceBaseCardinalityIdentity(t *testing.T) {
	// eq. (1) holds on the reference base with the true cardinalities:
	// b_i·z_i = Σ_j d_{i,j}·z_j.
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(7)
		g := graph.RandomStronglyConnected(n, rng.Intn(2*n), rng)
		inputs := make([]model.Input, n)
		for i := range inputs {
			inputs[i] = model.Input{Value: float64(rng.Intn(2))}
		}
		b, fib, err := BaseOfGraph(g, inputs)
		if err != nil {
			t.Fatal(err)
		}
		z := fib.FibreCardinalities()
		for i := 0; i < b.N(); i++ {
			lhs := b.Out[i] * z[i]
			rhs := 0
			for j := 0; j < b.N(); j++ {
				rhs += b.D[i][j] * z[j]
			}
			if lhs != rhs {
				t.Fatalf("trial %d: eq. (1) fails at fibre %d: %d ≠ %d (base %v, z %v)",
					trial, i, lhs, rhs, b, z)
			}
		}
	}
}

func TestBoundedAgentFreezesWithCorrectBase(t *testing.T) {
	// Finite-state variant: with a bound N known, agents freeze after a
	// 2N+2 stable stretch, state stops growing, and the frozen candidate
	// is the true base.
	g := graph.Ring(6)
	inputs := testutil.Inputs(1, 2, 1, 2, 1, 2)
	boundN := 8
	factory, err := NewBoundedFactory(model.OutdegreeAware, boundN)
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunStatic(t, g, model.OutdegreeAware, inputs, factory, 4*(2*boundN+2)+40, 9)
	sizes := make([]int, e.N())
	levels := make([]int, e.N())
	for i := 0; i < e.N(); i++ {
		a := e.Agent(i).(*BoundedAgent)
		if !a.Frozen() {
			t.Fatalf("agent %d not frozen after the budget", i)
		}
		base, ok := a.CandidateBase()
		if !ok || base.N() != 2 {
			t.Fatalf("agent %d frozen candidate wrong: %v", i, base)
		}
		sizes[i] = a.TableSize()
		levels[i] = a.Level()
	}
	// Run much longer: state must not grow at all.
	for r := 0; r < 200; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < e.N(); i++ {
		a := e.Agent(i).(*BoundedAgent)
		if a.TableSize() != sizes[i] || a.Level() != levels[i] {
			t.Fatalf("agent %d state grew while frozen: table %d→%d, level %d→%d",
				i, sizes[i], a.TableSize(), levels[i], a.Level())
		}
	}
}

func TestBoundedAgentUnfreezesOnCorruption(t *testing.T) {
	g := graph.Ring(5)
	inputs := testutil.Inputs(3, 3, 3, 3, 3)
	factory, err := NewBoundedFactory(model.OutdegreeAware, 6)
	if err != nil {
		t.Fatal(err)
	}
	e := testutil.RunStatic(t, g, model.OutdegreeAware, inputs, factory, 120, 10)
	if !e.Agent(0).(*BoundedAgent).Frozen() {
		t.Fatal("agent 0 should be frozen before corruption")
	}
	e.Agent(0).(model.Corruptible).Corrupt(777)
	for r := 0; r < 150; r++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < e.N(); i++ {
		a := e.Agent(i).(*BoundedAgent)
		if a.Epoch() == 0 {
			t.Fatalf("agent %d never reset", i)
		}
		base, ok := a.CandidateBase()
		if !ok || base.N() != 1 {
			t.Fatalf("agent %d post-recovery candidate wrong: %v", i, base)
		}
		if !a.Frozen() {
			t.Fatalf("agent %d should have re-frozen after recovery", i)
		}
	}
}

func TestBoundedFactoryValidation(t *testing.T) {
	if _, err := NewBoundedFactory(model.OutdegreeAware, 0); err == nil {
		t.Fatal("bound 0 accepted")
	}
	if _, err := NewBoundedFactory(model.SimpleBroadcast, 5); err == nil {
		t.Fatal("broadcast model accepted")
	}
}

func TestDistributedMatchesReferencePortsAndSymmetric(t *testing.T) {
	// The op and symmetric models against the centralized reference on
	// random networks (the reference refines with ports when present).
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 8; trial++ {
		n := 3 + rng.Intn(5)
		inputs := make([]model.Input, n)
		for i := range inputs {
			inputs[i] = model.Input{Value: float64(1 + rng.Intn(2))}
		}
		// Output ports on a random digraph.
		gp := graph.RandomStronglyConnected(n, rng.Intn(2*n), rng).AssignPorts()
		want, _, err := BaseOfGraph(gp, inputs)
		if err != nil {
			t.Fatal(err)
		}
		factory, err := NewFactory(model.OutputPortAware)
		if err != nil {
			t.Fatal(err)
		}
		e := testutil.RunStatic(t, gp, model.OutputPortAware, inputs, factory, roundsFor(gp), int64(trial))
		for i := 0; i < e.N(); i++ {
			got, ok := e.Agent(i).(*Agent).CandidateBase()
			if !ok || got.N() != want.N() {
				t.Fatalf("trial %d (op): agent %d base %v, reference %v", trial, i, got, want)
			}
		}
		// Symmetric model on a random bidirectional graph.
		gs := graph.RandomSymmetricConnected(n, rng.Intn(n), rng)
		wantS, _, err := BaseOfGraph(gs, inputs)
		if err != nil {
			t.Fatal(err)
		}
		factoryS, err := NewFactory(model.Symmetric)
		if err != nil {
			t.Fatal(err)
		}
		eS := testutil.RunStatic(t, gs, model.Symmetric, inputs, factoryS, roundsFor(gs), int64(trial))
		for i := 0; i < eS.N(); i++ {
			got, ok := eS.Agent(i).(*Agent).CandidateBase()
			if !ok || !got.Isomorphic(wantS) {
				t.Fatalf("trial %d (sym): agent %d base %v, reference %v", trial, i, got, wantS)
			}
		}
	}
}
