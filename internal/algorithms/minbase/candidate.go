package minbase

import (
	"fmt"
	"sort"
	"strings"

	"anonnet/internal/graph"
	"anonnet/internal/multiset"
)

// Base is a candidate minimum base B_{w,b} (§4.2): vertex i carries the
// input value w_i of its fibre (with the leader flag of §4.5), the common
// outdegree b_i of the fibre's members, and D[i][j] counts the base edges
// i→j (the d_{i,j} of eq. (1)).
type Base struct {
	Values []float64
	Leader []bool
	Out    []int
	D      [][]int
}

// N returns the number of base vertices (fibres).
func (b *Base) N() int { return len(b.Values) }

// Multiset returns the value multiset obtained by giving value w_i the
// multiplicity z_i — the reconstructed input multiset of §4.2, up to the
// common factor k of eq. (2).
func (b *Base) Multiset(z []int) *multiset.Multiset[float64] {
	m := multiset.New[float64]()
	for i, v := range b.Values {
		m.AddN(v, z[i])
	}
	return m
}

// LeaderWeight returns Σ_{j ∈ L_B} z_j, the denominator of eq. (5).
func (b *Base) LeaderWeight(z []int) int {
	s := 0
	for i, isLeader := range b.Leader {
		if isLeader {
			s += z[i]
		}
	}
	return s
}

// IsSymmetricQuotient reports whether D has a symmetric support
// (d_{i,j} > 0 ⟺ d_{j,i} > 0), which the base of a bidirectional network
// always has (§4.3).
func (b *Base) IsSymmetricQuotient() bool {
	for i := range b.D {
		for j := range b.D[i] {
			if (b.D[i][j] > 0) != (b.D[j][i] > 0) {
				return false
			}
		}
	}
	return true
}

// String renders a stable description for test output.
func (b *Base) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "base(m=%d;", b.N())
	for i := range b.Values {
		fmt.Fprintf(&sb, " v%d=%g/out%d", i, b.Values[i], b.Out[i])
		if b.Leader[i] {
			sb.WriteString("/L")
		}
	}
	sb.WriteString(";")
	for i := range b.D {
		for j := range b.D[i] {
			if b.D[i][j] > 0 {
				fmt.Fprintf(&sb, " %d>%d*%d", i, j, b.D[i][j])
			}
		}
	}
	sb.WriteString(")")
	return sb.String()
}

// ExtractBase extracts a candidate minimum base from a signature table.
//
// A level ℓ ≥ 1 is *conservative* when the labels known at ℓ are in
// bijection with the labels known at ℓ-1 via their Prev component and all
// their in-references resolve at ℓ-1 — i.e. the refinement step ℓ-1 → ℓ did
// not split any known class. The extractor finds the longest stretch of
// consecutive conservative levels and reads the base off the stretch's
// middle level: once the table is complete up to the true stable partition
// (round n + D), the stretch covers it and the middle level is both stable
// and completely known, so the candidate equals the minimum base; taking
// the middle guards against transient stretches among the youngest,
// still-incomplete levels.
func ExtractBase(levels map[int]map[string]Sig) (*Base, bool) {
	if len(levels) == 0 {
		return nil, false
	}
	maxLevel := 0
	for l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	conservative := make([]bool, maxLevel+1)
	for l := 1; l <= maxLevel; l++ {
		conservative[l] = isConservative(levels[l], levels[l-1])
	}
	bestStart, bestLen := 0, 0
	runStart := -1
	for l := 1; l <= maxLevel+1; l++ {
		if l <= maxLevel && conservative[l] {
			if runStart == -1 {
				runStart = l
			}
			continue
		}
		if runStart != -1 {
			if runLen := l - runStart; runLen > bestLen {
				bestStart, bestLen = runStart, runLen
			}
			runStart = -1
		}
	}
	if bestLen == 0 {
		return nil, false
	}
	mid := bestStart + bestLen/2
	if mid > bestStart+bestLen-1 {
		mid = bestStart + bestLen - 1
	}
	return buildBase(levels[mid], levels[mid-1])
}

// isConservative checks the bijectivity and closure conditions between two
// consecutive levels.
func isConservative(cur, prev map[string]Sig) bool {
	if len(cur) == 0 || len(cur) != len(prev) {
		return false
	}
	seenPrev := make(map[string]bool, len(cur))
	for _, s := range cur {
		if _, ok := prev[s.Prev]; !ok {
			return false
		}
		if seenPrev[s.Prev] {
			return false // ψ not injective
		}
		seenPrev[s.Prev] = true
		for _, r := range s.In {
			if _, ok := prev[r.Prev]; !ok {
				return false
			}
		}
	}
	return len(seenPrev) == len(prev) // ψ surjective
}

// buildBase reads the base off a conservative level: vertices are the
// level's labels (sorted, for determinism); an in-reference to a previous-
// level label m contributes edges from ψ⁻¹(m).
func buildBase(cur, prev map[string]Sig) (*Base, bool) {
	labels := make([]string, 0, len(cur))
	for l := range cur {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	// ψ⁻¹: previous-level label → vertex whose Prev it is.
	prevInv := make(map[string]int, len(labels))
	for i, l := range labels {
		prevInv[cur[l].Prev] = i
	}
	b := &Base{
		Values: make([]float64, len(labels)),
		Leader: make([]bool, len(labels)),
		Out:    make([]int, len(labels)),
		D:      make([][]int, len(labels)),
	}
	for i, l := range labels {
		s := cur[l]
		in, err := DecodeInput(s.Value)
		if err != nil {
			return nil, false
		}
		b.Values[i] = in.Value
		b.Leader[i] = in.Leader
		b.Out[i] = s.Out
		b.D[i] = make([]int, len(labels))
	}
	for i, l := range labels {
		for _, r := range cur[l].In {
			src, ok := prevInv[r.Prev]
			if !ok {
				return nil, false
			}
			b.D[src][i] += r.Count
		}
	}
	return b, true
}

// VertexLabel renders the isomorphism-relevant data of base vertex i:
// value, outdegree, and leader flag.
func (b *Base) VertexLabel(i int) string {
	l := ""
	if b.Leader[i] {
		l = "/L"
	}
	return fmt.Sprintf("%g/out%d%s", b.Values[i], b.Out[i], l)
}

// ToGraph converts the base to a graph plus vertex labels, so candidates
// can be compared up to isomorphism (minimum bases are unique only up to
// isomorphism, §3.2, and the distributed extractor's vertex order follows
// hash labels, which shift as the extraction level advances).
func (b *Base) ToGraph() (*graph.Graph, []string) {
	g := graph.New(b.N())
	labels := make([]string, b.N())
	for i := 0; i < b.N(); i++ {
		labels[i] = b.VertexLabel(i)
		for j := 0; j < b.N(); j++ {
			for c := 0; c < b.D[i][j]; c++ {
				g.AddEdge(i, j)
			}
		}
	}
	return g, labels
}

// Isomorphic reports whether two bases are isomorphic as valued
// multigraphs.
func (b *Base) Isomorphic(other *Base) bool {
	if b.N() != other.N() {
		return false
	}
	g1, l1 := b.ToGraph()
	g2, l2 := other.ToGraph()
	return graph.Isomorphic(g1, g2, l1, l2)
}
