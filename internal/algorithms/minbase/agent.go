package minbase

import (
	"fmt"

	"anonnet/internal/model"
)

// auditPeriod is how often (in rounds) an agent re-validates its whole
// state against the self-certifying hashes. Every entry is validated when
// first learned; the periodic audit exists to catch *in-place corruption*
// of previously valid state (the self-stabilization experiments), with a
// detection latency of at most auditPeriod rounds.
const auditPeriod = 8

// Agent is the distributed minimum-base automaton. It supports the three
// models with enough sender knowledge for the task: outdegree awareness,
// output port awareness, and symmetric communications (where the outdegree
// is learned as the round-1 indegree, §2.2). It is meaningful on static
// networks, the setting of §4.
//
// Per round the agent (a) broadcasts its label history and signature table,
// (b) merges validated incoming entries, and (c) when every in-neighbour's
// history is long enough, extends its own history by one level. Candidates
// are extracted on demand by CandidateBase.
type Agent struct {
	kind       model.Kind
	valLabel   string
	outdeg     int // -1 until learned
	degChanged bool
	epoch      int64
	round      int
	hist       []string
	table      *Table
	// suppressRefine is set by BoundedAgent while frozen: merging and
	// reset handling proceed, but no new level is computed.
	suppressRefine bool

	// cache for CandidateBase keyed by table size (the table only grows
	// within an epoch).
	cachedAt   int
	cachedBase *Base
	cachedOK   bool
}

var (
	_ model.Broadcaster     = (*Agent)(nil)
	_ model.OutdegreeSender = (*Agent)(nil)
	_ model.PortSender      = (*Agent)(nil)
	_ model.Corruptible     = (*Agent)(nil)
)

// NewAgent returns the automaton for one agent with the given private
// input, for the given communication model (one of OutdegreeAware,
// OutputPortAware, Symmetric).
func NewAgent(kind model.Kind, in model.Input) (*Agent, error) {
	switch kind {
	case model.OutdegreeAware, model.OutputPortAware, model.Symmetric:
	default:
		return nil, fmt.Errorf("minbase: model %v cannot compute the minimum base (needs outdegree, port, or symmetry knowledge)", kind)
	}
	a := &Agent{kind: kind, valLabel: EncodeInput(in), outdeg: -1}
	a.reset(0)
	return a, nil
}

// NewFactory adapts NewAgent to a model.Factory; the kind must be valid for
// minbase (see NewAgent).
func NewFactory(kind model.Kind) (model.Factory, error) {
	// Probe the kind once so the factory itself cannot fail.
	if _, err := NewAgent(kind, model.Input{}); err != nil {
		return nil, err
	}
	return func(in model.Input) model.Agent {
		a, _ := NewAgent(kind, in)
		return a
	}, nil
}

// reset re-initializes the volatile state under the given epoch, as a
// freshly started agent would be (§2.2 asynchronous starts): level-0 label
// from the input value, a table holding only the level-0 signature.
func (a *Agent) reset(epoch int64) {
	sig0 := Sig{Value: a.valLabel, Out: -1}
	l0 := Label(sig0)
	a.epoch = epoch
	a.hist = []string{l0}
	a.table = NewTable()
	a.table.add(Key{Level: 0, Label: l0}, sig0)
	a.cachedAt = -1
	a.cachedBase = nil
	a.cachedOK = false
}

// Level returns the agent's current view level (number of refinement steps
// completed).
func (a *Agent) Level() int { return len(a.hist) - 1 }

// Epoch returns the agent's current reset epoch.
func (a *Agent) Epoch() int64 { return a.epoch }

// TableSize returns the number of known (level, label) signatures.
func (a *Agent) TableSize() int { return a.table.Len() }

// Send implements the symmetric-communications sending function: the
// message depends only on the local state.
func (a *Agent) Send() model.Message { return a.buildMsg(0) }

// SendOutdegree implements the outdegree-aware sending function, recording
// the learned outdegree.
func (a *Agent) SendOutdegree(outdeg int) model.Message {
	a.observeOutdegree(outdeg)
	return a.buildMsg(0)
}

// observeOutdegree records the current outdegree. The §4 algorithms assume
// a static network, where outdegrees are constant; a change (an
// asynchronous start joining the network, §2.2) invalidates every recorded
// signature, so it schedules a reset wave.
func (a *Agent) observeOutdegree(outdeg int) {
	if a.outdeg != -1 && a.outdeg != outdeg {
		a.degChanged = true
	}
	a.outdeg = outdeg
}

// SendPorts implements the output-port-aware sending function: the same
// history and table on every port, each copy tagged with its port so that
// receivers see the edge coloring of G_op.
func (a *Agent) SendPorts(outdeg int) []model.Message {
	a.observeOutdegree(outdeg)
	out := make([]model.Message, outdeg)
	for p := 0; p < outdeg; p++ {
		out[p] = a.buildMsg(p + 1)
	}
	return out
}

// buildMsg assembles the round's message with zero-copy snapshots: the
// history and table are append-only, entries are immutable, and receivers
// only read the prefix captured here, so sharing the backing arrays across
// agents (and engine goroutines) is safe.
func (a *Agent) buildMsg(port int) *Msg {
	return &Msg{
		Epoch:   a.epoch,
		Hist:    a.hist[:len(a.hist):len(a.hist)],
		Port:    port,
		Entries: a.table.Snapshot(),
	}
}

// Receive merges incoming knowledge and, when possible, performs one
// refinement step.
func (a *Agent) Receive(msgs []model.Message) {
	a.round++
	if a.kind == model.Symmetric {
		// Static symmetric network: outdegree = indegree, learned at the
		// end of the first receive phase (§2.2).
		a.observeOutdegree(len(msgs))
	}
	if a.degChanged {
		// Outdegree changed: signatures recorded so far mixed stale
		// degrees (asynchronous starts). Restart the refinement with a
		// reset wave; once degrees are stable this happens finitely often.
		a.degChanged = false
		a.reset(a.epoch + 1)
		return
	}
	if a.round%auditPeriod == 0 && !a.selfValid() {
		a.reset(a.epoch + 1)
		return
	}
	// Epoch resolution: adopt the highest epoch heard; a strictly higher
	// epoch is a reset wave and wipes local state.
	incoming := make([]*Msg, 0, len(msgs))
	maxEpoch := a.epoch
	for _, raw := range msgs {
		m, ok := raw.(*Msg)
		if !ok {
			continue
		}
		incoming = append(incoming, m)
		if m.Epoch > maxEpoch {
			maxEpoch = m.Epoch
		}
	}
	if maxEpoch > a.epoch {
		a.reset(maxEpoch)
		// Fall through: same-epoch messages of this round are still
		// usable; they are exactly the wave-front neighbours.
	}
	valid := incoming[:0]
	minHist := -1
	complete := true // every in-message valid and on the current epoch
	for _, m := range incoming {
		if m.Epoch != a.epoch || !a.mergeMsg(m) {
			complete = false
			continue
		}
		if minHist == -1 || len(m.Hist) < minHist {
			minHist = len(m.Hist)
		}
		valid = append(valid, m)
	}
	if !complete || minHist == -1 {
		// A stale or invalid in-neighbour blocks refinement this round —
		// the refinement step needs the full in-multiset.
		return
	}
	if a.suppressRefine {
		return
	}
	// One refinement step: compute the level-L label, L = current level+1,
	// provided every in-neighbour (self included, via the self-loop) has
	// reached level L-1.
	L := len(a.hist)
	if L > minHist {
		return
	}
	refs := make([]refObs, 0, len(valid))
	for _, m := range valid {
		refs = append(refs, refObs{label: m.Hist[L-1], port: m.Port})
	}
	sig := Sig{Value: a.valLabel, Out: a.outdeg, Prev: a.hist[L-1], In: groupRefs(refs)}
	label := Label(sig)
	a.hist = append(a.hist, label)
	a.table.add(Key{Level: L, Label: label}, sig)
}

// mergeMsg merges a message's new entries into the table, validating each
// on first sight (entries are self-certifying: label = hash(sig)). It then
// checks the advertised history chains through the merged table. A false
// return marks the sender as suspect for this round; entries that did
// validate are kept — being self-certified, they are knowledge regardless
// of the messenger.
func (a *Agent) mergeMsg(m *Msg) bool {
	if len(m.Hist) == 0 {
		return false
	}
	ok := true
	for _, e := range m.Entries {
		if a.table.Has(e.Key) {
			continue // validated when first learned
		}
		if e.Key.Level < 0 || Label(e.Sig) != e.Key.Label {
			ok = false
			continue
		}
		a.table.add(e.Key, e.Sig)
	}
	if !ok {
		return false
	}
	for l, lab := range m.Hist {
		s, found := a.table.Get(Key{Level: l, Label: lab})
		if !found {
			return false
		}
		if l > 0 && s.Prev != m.Hist[l-1] {
			return false
		}
	}
	return true
}

// selfValid re-checks the agent's own state certification, catching state
// corruption between rounds (run every auditPeriod rounds).
func (a *Agent) selfValid() bool {
	if len(a.hist) == 0 || !a.table.validate() {
		return false
	}
	for l, lab := range a.hist {
		s, ok := a.table.Get(Key{Level: l, Label: lab})
		if !ok {
			return false
		}
		if l > 0 && s.Prev != a.hist[l-1] {
			return false
		}
	}
	return true
}

// Output returns the agent's candidate base, or nil while none is
// extractable. Algorithms building on minbase (package freqcalc) wrap this
// with the function evaluation of §4.2.
func (a *Agent) Output() model.Value {
	base, ok := a.CandidateBase()
	if !ok {
		return nil
	}
	return base
}

// CandidateBase extracts the candidate minimum base from the current table
// (see candidate.go); ok is false while the table has no stable stretch.
// From round n + D (plus any reset or late-start delay) the candidate is
// the true minimum base of the valued network graph.
func (a *Agent) CandidateBase() (*Base, bool) {
	if a.cachedAt == a.table.Len() {
		return a.cachedBase, a.cachedOK
	}
	base, ok := ExtractBase(a.table.ByLevel())
	a.cachedAt = a.table.Len()
	a.cachedBase = base
	a.cachedOK = ok
	return base, ok
}

// Corrupt scrambles the agent's volatile state: the history chain and a
// table entry are overwritten with junk derived from the seed. A later
// audit (or a neighbour's message validation) detects the broken
// certification and launches a reset wave.
func (a *Agent) Corrupt(junk int64) {
	garbage := fmt.Sprintf("%032x", uint64(junk)*0x9e3779b1)
	if len(a.hist) > 0 {
		a.hist[len(a.hist)-1] = garbage
	}
	a.table.add(Key{Level: int(uint64(junk) % 7), Label: garbage}, Sig{Value: garbage, Out: int(junk % 5)})
	a.cachedAt = -1
}
