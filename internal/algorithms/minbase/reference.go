package minbase

import (
	"fmt"
	"strconv"

	"anonnet/internal/fibration"
	"anonnet/internal/graph"
	"anonnet/internal/model"
)

// BaseOfGraph is the centralized reference implementation: it computes the
// minimum base of the valued graph (values + leader flags + outdegrees)
// directly via the fibration machinery and converts it to a Base. The test
// suite validates the distributed agents against it; analysis code can use
// it when global knowledge is available.
func BaseOfGraph(g *graph.Graph, inputs []model.Input) (*Base, *fibration.Fibration, error) {
	if len(inputs) != g.N() {
		return nil, nil, fmt.Errorf("minbase: %d inputs for %d vertices", len(inputs), g.N())
	}
	labels := make([]string, g.N())
	for v := range labels {
		labels[v] = EncodeInput(inputs[v]) + "|od=" + strconv.Itoa(g.OutDegree(v))
	}
	fib, err := fibration.MinimumBase(g, labels)
	if err != nil {
		return nil, nil, err
	}
	m := fib.Base.N()
	b := &Base{
		Values: make([]float64, m),
		Leader: make([]bool, m),
		Out:    make([]int, m),
		D:      make([][]int, m),
	}
	// Representative per fibre for values and outdegrees.
	seen := make([]bool, m)
	for v, bv := range fib.VertexMap {
		if seen[bv] {
			continue
		}
		seen[bv] = true
		b.Values[bv] = inputs[v].Value
		b.Leader[bv] = inputs[v].Leader
		b.Out[bv] = g.OutDegree(v)
	}
	for i := 0; i < m; i++ {
		b.D[i] = make([]int, m)
	}
	for _, e := range fib.Base.Edges() {
		b.D[e.From][e.To]++
	}
	return b, fib, nil
}
