package minbase

import (
	"fmt"

	"anonnet/internal/model"
)

// The paper looks for *finite-state* solutions where possible (§1), and
// §3.2 notes Boldi–Vigna's finite-state variant of the minimum-base
// algorithm. Our unbounded Agent refines one view level per round forever.
// When a bound N ≥ n is known (the Corollary 4.2 setting), refinement can
// safely stop: incomplete (still-flooding) levels span at most the
// eccentricity < N of the agent, so a conservative stretch longer than
// 2N + 2 levels must contain N + 1 fully-known stable levels — and a stable
// level with complete knowledge is the true partition, stable forever.
// Freezing there bounds the agent's state and bandwidth for the rest of the
// execution; a reset wave (corruption, asynchronous start) lifts the
// freeze, preserving self-stabilization.

// BoundedAgent wraps Agent with the freeze rule, yielding a finite-state
// execution when a bound N on the network size is known.
type BoundedAgent struct {
	*Agent
	boundN int
}

var (
	_ model.Broadcaster     = (*BoundedAgent)(nil)
	_ model.OutdegreeSender = (*BoundedAgent)(nil)
	_ model.PortSender      = (*BoundedAgent)(nil)
	_ model.Corruptible     = (*BoundedAgent)(nil)
)

// NewBoundedAgent returns a finite-state minimum-base automaton for a
// network of at most boundN agents.
func NewBoundedAgent(kind model.Kind, in model.Input, boundN int) (*BoundedAgent, error) {
	if boundN < 1 {
		return nil, fmt.Errorf("minbase: bound %d, want ≥ 1", boundN)
	}
	a, err := NewAgent(kind, in)
	if err != nil {
		return nil, err
	}
	return &BoundedAgent{Agent: a, boundN: boundN}, nil
}

// NewBoundedFactory adapts NewBoundedAgent to a model.Factory.
func NewBoundedFactory(kind model.Kind, boundN int) (model.Factory, error) {
	if _, err := NewBoundedAgent(kind, model.Input{}, boundN); err != nil {
		return nil, err
	}
	return func(in model.Input) model.Agent {
		a, _ := NewBoundedAgent(kind, in, boundN)
		return a
	}, nil
}

// Frozen reports whether the agent has stopped refining.
func (b *BoundedAgent) Frozen() bool {
	return b.stableRunLength() >= 2*b.boundN+2
}

// stableRunLength returns the length of the longest conservative stretch of
// the agent's table (0 if none).
func (b *BoundedAgent) stableRunLength() int {
	levels := b.table.ByLevel()
	maxLevel := 0
	for l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	best, run := 0, 0
	for l := 1; l <= maxLevel; l++ {
		if isConservative(levels[l], levels[l-1]) {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 0
		}
	}
	return best
}

// Receive applies the underlying transition with refinement gated by the
// freeze rule: a frozen agent keeps gossiping and merging its table — so
// late starters still learn it, and genuinely new knowledge (which changes
// the table, hence possibly Frozen()) unfreezes it — and still adopts
// epoch reset waves and outdegree changes, preserving self-stabilization;
// it just computes no new view level, bounding its state.
func (b *BoundedAgent) Receive(msgs []model.Message) {
	b.suppressRefine = b.Frozen()
	b.Agent.Receive(msgs)
	b.suppressRefine = false
}
