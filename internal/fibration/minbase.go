package fibration

import (
	"fmt"
	"sort"

	"anonnet/internal/graph"
)

// MinimumBase computes the minimum base of g (§3.2) — the unique (up to
// isomorphism) fibration-prime graph B admitting a fibration g → B — and
// returns that fibration. Vertices may carry labels (the valuation of the
// valued case: input values, outdegrees for G_od, leader flags); nil means
// unlabelled. Edge ports, when present, act as the edge coloring of the
// output-port-aware case G_op.
//
// The construction is the coarsest stable partition: vertices are
// repeatedly split by the multiset of (class, port) of their in-edges,
// starting from the label partition. Two vertices end in the same class iff
// they have isomorphic in-views, i.e. iff some fibration identifies them.
func MinimumBase(g *graph.Graph, labels []string) (*Fibration, error) {
	n := g.N()
	if labels != nil && len(labels) != n {
		return nil, fmt.Errorf("fibration: MinimumBase: %d labels for %d vertices", len(labels), n)
	}
	class := initialClasses(n, labels)
	for iter := 0; iter < n; iter++ {
		next := refineOnce(g, class)
		if countClasses(next) == countClasses(class) {
			class = next
			break
		}
		class = next
	}
	return quotient(g, class)
}

// IsPrime reports whether g is fibration prime: its minimum base has as
// many vertices as g itself, i.e. every fibration from g is an isomorphism.
func IsPrime(g *graph.Graph, labels []string) (bool, error) {
	f, err := MinimumBase(g, labels)
	if err != nil {
		return false, err
	}
	return f.Base.N() == g.N(), nil
}

func initialClasses(n int, labels []string) []int {
	if labels == nil {
		return make([]int, n)
	}
	distinct := append([]string(nil), labels...)
	sort.Strings(distinct)
	distinct = dedupe(distinct)
	rank := make(map[string]int, len(distinct))
	for i, s := range distinct {
		rank[s] = i
	}
	class := make([]int, n)
	for v, s := range labels {
		class[v] = rank[s]
	}
	return class
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// refineOnce splits classes by in-neighbourhood signatures. The new class
// ids are ranks of the sorted signature strings, so the refinement is
// deterministic and label-respecting (the old class is part of the
// signature, making each step a refinement).
func refineOnce(g *graph.Graph, class []int) []int {
	sigs := make([]string, g.N())
	for v := 0; v < g.N(); v++ {
		in := make([]string, 0, g.InDegree(v))
		for _, ei := range g.InEdges(v) {
			e := g.Edge(ei)
			in = append(in, fmt.Sprintf("%d/%d", class[e.From], e.Port))
		}
		sort.Strings(in)
		sigs[v] = fmt.Sprintf("%d|%v", class[v], in)
	}
	distinct := append([]string(nil), sigs...)
	sort.Strings(distinct)
	distinct = dedupe(distinct)
	rank := make(map[string]int, len(distinct))
	for i, s := range distinct {
		rank[s] = i
	}
	next := make([]int, g.N())
	for v, s := range sigs {
		next[v] = rank[s]
	}
	return next
}

func countClasses(class []int) int {
	seen := make(map[int]bool, len(class))
	for _, c := range class {
		seen[c] = true
	}
	return len(seen)
}

// quotient builds the base graph from a stable partition and the fibration
// onto it. For each class the representative's in-edges define the base's
// in-edges; every other member's in-edges are matched to them group-by-group
// (grouped by (source class, port)), which is exactly the unique-lifting
// bijection.
func quotient(g *graph.Graph, class []int) (*Fibration, error) {
	m := countClasses(class)
	// Representative: smallest vertex of each class.
	rep := make([]int, m)
	for i := range rep {
		rep[i] = -1
	}
	for v := g.N() - 1; v >= 0; v-- {
		rep[class[v]] = v
	}
	base := graph.New(m)
	// groupEdges[c] maps (source class, port) to the ordered list of base
	// edge indices for class c's in-edges in that group.
	type groupKey struct{ srcClass, port int }
	groupEdges := make([]map[groupKey][]int, m)
	for c := 0; c < m; c++ {
		groupEdges[c] = make(map[groupKey][]int)
		v := rep[c]
		for _, ei := range sortedInEdges(g, v, class) {
			e := g.Edge(ei)
			k := groupKey{class[e.From], e.Port}
			bei := base.M()
			base.AddPortEdge(class[e.From], c, e.Port)
			groupEdges[c][k] = append(groupEdges[c][k], bei)
		}
	}
	edgeMap := make([]int, g.M())
	for v := 0; v < g.N(); v++ {
		c := class[v]
		used := make(map[groupKey]int)
		for _, ei := range sortedInEdges(g, v, class) {
			e := g.Edge(ei)
			k := groupKey{class[e.From], e.Port}
			lst := groupEdges[c][k]
			if used[k] >= len(lst) {
				return nil, fmt.Errorf("fibration: quotient: partition not stable at vertex %d (class %d, group %v)", v, c, k)
			}
			edgeMap[ei] = lst[used[k]]
			used[k]++
		}
		for k, u := range used {
			if u != len(groupEdges[c][k]) {
				return nil, fmt.Errorf("fibration: quotient: vertex %d has %d in-edges in group %v, representative has %d",
					v, u, k, len(groupEdges[c][k]))
			}
		}
		// A vertex whose group set is a strict subset of the
		// representative's would be caught here too.
		if len(used) != len(groupEdges[c]) {
			return nil, fmt.Errorf("fibration: quotient: vertex %d misses an in-edge group of its class %d", v, c)
		}
	}
	vm := make([]int, g.N())
	copy(vm, class)
	return &Fibration{Total: g, Base: base, VertexMap: vm, EdgeMap: edgeMap}, nil
}

// sortedInEdges returns v's in-edge indices ordered by (source class, port)
// so that group traversal order is identical for all members of a class.
func sortedInEdges(g *graph.Graph, v int, class []int) []int {
	idx := g.InEdges(v)
	sort.Slice(idx, func(a, b int) bool {
		ea, eb := g.Edge(idx[a]), g.Edge(idx[b])
		if class[ea.From] != class[eb.From] {
			return class[ea.From] < class[eb.From]
		}
		return ea.Port < eb.Port
	})
	return idx
}
