package fibration

import (
	"fmt"
	"sort"
	"strings"

	"anonnet/internal/graph"
)

// Views (universal covers truncated at finite depth) are the classical tool
// behind the minimum-base computation (§3.2, after Boldi–Vigna [8]): the
// depth-t view of an agent is the tree of all reversed walks of length ≤ t
// into it, and two agents lie in the same fibre of the minimum base iff
// their views agree at every depth — with depth n-1 sufficient for an
// n-vertex graph, since the view refinement is the coarsest stable
// partition computed one level per depth.

// View is a truncated in-view: a tree whose root is the observed vertex and
// whose children are the views of its in-neighbours one level shallower.
type View struct {
	// Label is the vertex label (valuation), "" for unlabelled graphs.
	Label string
	// Port is the output port of the edge this subtree was reached
	// through (0 at the root or for unlabelled edges).
	Port int
	// Children are the in-neighbours' views, canonically sorted.
	Children []*View
}

// ViewTree returns the depth-d in-view of vertex v in g, with optional
// vertex labels.
func ViewTree(g *graph.Graph, labels []string, v, depth int) *View {
	return buildView(g, labels, v, depth, 0)
}

func buildView(g *graph.Graph, labels []string, v, depth, port int) *View {
	out := &View{Port: port}
	if labels != nil {
		out.Label = labels[v]
	}
	if depth == 0 {
		return out
	}
	for _, ei := range g.InEdges(v) {
		e := g.Edge(ei)
		out.Children = append(out.Children, buildView(g, labels, e.From, depth-1, e.Port))
	}
	sort.Slice(out.Children, func(i, j int) bool {
		return out.Children[i].canonical() < out.Children[j].canonical()
	})
	return out
}

// canonical returns a canonical string encoding; equal encodings ⟺ equal
// views.
func (v *View) canonical() string {
	var b strings.Builder
	v.encode(&b)
	return b.String()
}

func (v *View) encode(b *strings.Builder) {
	fmt.Fprintf(b, "(%s/%d", v.Label, v.Port)
	for _, c := range v.Children {
		c.encode(b)
	}
	b.WriteByte(')')
}

// Equal reports whether two views are equal as ordered canonical trees.
func (v *View) Equal(other *View) bool { return v.canonical() == other.canonical() }

// Size returns the number of nodes in the view tree (exponential in depth
// for non-trivial graphs — the reason the distributed algorithm uses hash
// labels instead; see internal/algorithms/minbase).
func (v *View) Size() int {
	s := 1
	for _, c := range v.Children {
		s += c.Size()
	}
	return s
}

// ViewPartition partitions the vertices of g by depth-d view equality,
// returning the class index of each vertex (classes numbered by first
// occurrence).
func ViewPartition(g *graph.Graph, labels []string, depth int) []int {
	classOf := make(map[string]int)
	out := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		c := ViewTree(g, labels, v, depth).canonical()
		id, ok := classOf[c]
		if !ok {
			id = len(classOf)
			classOf[c] = id
		}
		out[v] = id
	}
	return out
}

// LeaderElectionPossible reports whether leader election is solvable in the
// anonymous network g with the given valuation: exactly when the (valued)
// graph is fibration prime (§3, after [5, 32]) — every agent then has a
// unique view, so the agents can deterministically distinguish one of
// themselves.
func LeaderElectionPossible(g *graph.Graph, labels []string) (bool, error) {
	return IsPrime(g, labels)
}
