package fibration

import (
	"math/rand"
	"testing"

	"anonnet/internal/graph"
)

func TestViewTreeBasics(t *testing.T) {
	g := graph.Ring(3)
	v := ViewTree(g, []string{"a", "b", "c"}, 0, 0)
	if v.Label != "a" || len(v.Children) != 0 || v.Size() != 1 {
		t.Fatalf("depth-0 view wrong: %+v", v)
	}
	v1 := ViewTree(g, []string{"a", "b", "c"}, 0, 1)
	// In-neighbours of 0 in R_3: itself (self-loop) and 2.
	if len(v1.Children) != 2 {
		t.Fatalf("depth-1 view has %d children, want 2", len(v1.Children))
	}
	if !v1.Equal(ViewTree(g, []string{"a", "b", "c"}, 0, 1)) {
		t.Fatal("equal views not Equal")
	}
}

func TestViewPartitionMatchesMinimumBase(t *testing.T) {
	// The fundamental equivalence: depth-(n-1) view classes = fibres of
	// the minimum base.
	rng := rand.New(rand.NewSource(15))
	cases := []struct {
		g      *graph.Graph
		labels []string
	}{
		{graph.Ring(6), []string{"a", "b", "a", "b", "a", "b"}},
		{graph.Ring(6), nil},
		{graph.Star(5), []string{"c", "l", "l", "l", "l"}},
		{graph.BidirectionalRing(5), nil},
		{graph.RandomStronglyConnected(6, 5, rng), []string{"x", "x", "y", "x", "y", "x"}},
		{graph.Hypercube(3), nil},
	}
	for i, c := range cases {
		fib, err := MinimumBase(c.g, c.labels)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		part := ViewPartition(c.g, c.labels, c.g.N()-1)
		// Same partition: same class ⟺ same fibre.
		for u := 0; u < c.g.N(); u++ {
			for w := u + 1; w < c.g.N(); w++ {
				sameFibre := fib.VertexMap[u] == fib.VertexMap[w]
				sameView := part[u] == part[w]
				if sameFibre != sameView {
					t.Errorf("case %d: vertices %d,%d: fibre-equal=%t view-equal=%t",
						i, u, w, sameFibre, sameView)
				}
			}
		}
	}
}

func TestViewsLiftInvariant(t *testing.T) {
	// Vertices in the same fibre of ANY fibration have equal views at
	// every depth — the view-level statement of the lifting lemma.
	rng := rand.New(rand.NewSource(25))
	base := graph.RandomStronglyConnected(4, 3, rng)
	fib, err := LiftCover(base, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	labels := LiftValuation(fib, []string{"a", "b", "c", "d"})
	for depth := 0; depth <= 4; depth++ {
		for u := 0; u < fib.Total.N(); u++ {
			for w := u + 1; w < fib.Total.N(); w++ {
				if fib.VertexMap[u] != fib.VertexMap[w] {
					continue
				}
				vu := ViewTree(fib.Total, labels, u, depth)
				vw := ViewTree(fib.Total, labels, w, depth)
				if !vu.Equal(vw) {
					t.Fatalf("depth %d: same-fibre vertices %d,%d have different views", depth, u, w)
				}
			}
		}
	}
}

func TestViewSizeGrowth(t *testing.T) {
	// Views grow exponentially with depth on a ring (branching 2 via the
	// self-loop) — the justification for hash labels (DESIGN.md §6).
	g := graph.Ring(4)
	s2 := ViewTree(g, nil, 0, 2).Size()
	s4 := ViewTree(g, nil, 0, 4).Size()
	s6 := ViewTree(g, nil, 0, 6).Size()
	if !(s2 < s4 && s4 < s6) {
		t.Fatalf("view sizes not growing: %d, %d, %d", s2, s4, s6)
	}
	if s6 < 4*s2 {
		t.Fatalf("view growth not superlinear: %d vs %d", s6, s2)
	}
}

func TestLeaderElectionPossible(t *testing.T) {
	// Symmetric unlabelled ring: impossible. Distinct values: possible.
	ok, err := LeaderElectionPossible(graph.Ring(5), nil)
	if err != nil || ok {
		t.Fatalf("leader election on unlabelled R_5: got %t, %v", ok, err)
	}
	ok, err = LeaderElectionPossible(graph.Ring(5), []string{"a", "b", "c", "d", "e"})
	if err != nil || !ok {
		t.Fatalf("leader election with distinct values: got %t, %v", ok, err)
	}
	// A single distinguished value suffices on a ring.
	ok, err = LeaderElectionPossible(graph.Ring(5), []string{"L", "x", "x", "x", "x"})
	if err != nil || !ok {
		t.Fatalf("leader election with one mark: got %t, %v", ok, err)
	}
	// But not on a star with identical leaves (leaves stay symmetric).
	ok, err = LeaderElectionPossible(graph.Star(5), []string{"c", "l", "l", "l", "l"})
	if err != nil || ok {
		t.Fatalf("leader election on star leaves: got %t, %v", ok, err)
	}
}
