// Package fibration implements graph fibrations (§3): fibration checking,
// minimum bases via coarsest stable partitions, fibres, coverings, the
// lifting of valuations along fibrations (Lemma 3.1's machinery), and
// constructions of total graphs fibred over a prescribed base with
// prescribed fibre cardinalities (the test harness for §4).
package fibration

import (
	"fmt"

	"anonnet/internal/graph"
)

// Fibration is a fibration φ : Total → Base, given by its vertex and edge
// components. The package constructs only epimorphic fibrations, per the
// paper's restriction (§3).
type Fibration struct {
	Total *graph.Graph
	Base  *graph.Graph
	// VertexMap[v] is φ(v) for each Total vertex v.
	VertexMap []int
	// EdgeMap[e] is φ(e) for each Total edge index e.
	EdgeMap []int
}

// Check verifies that f is a well-formed epimorphic fibration:
// a graph morphism (commuting with source and target, preserving ports),
// surjective on vertices and edges, with the unique-lifting property: for
// every base edge e and every total vertex i with φ(i) = target(e), exactly
// one total edge ẽ has φ(ẽ) = e and target(ẽ) = i. If vertex label slices
// are supplied (non-nil), it additionally verifies v_Total = v_Base ∘ φ.
func (f *Fibration) Check(totalLabels, baseLabels []string) error {
	g, b := f.Total, f.Base
	if len(f.VertexMap) != g.N() {
		return fmt.Errorf("fibration: vertex map has %d entries, want %d", len(f.VertexMap), g.N())
	}
	if len(f.EdgeMap) != g.M() {
		return fmt.Errorf("fibration: edge map has %d entries, want %d", len(f.EdgeMap), g.M())
	}
	vertexHit := make([]bool, b.N())
	for v, bv := range f.VertexMap {
		if bv < 0 || bv >= b.N() {
			return fmt.Errorf("fibration: vertex %d maps to out-of-range base vertex %d", v, bv)
		}
		vertexHit[bv] = true
		if totalLabels != nil && baseLabels != nil && totalLabels[v] != baseLabels[bv] {
			return fmt.Errorf("fibration: vertex %d has label %q but its image %d has label %q",
				v, totalLabels[v], bv, baseLabels[bv])
		}
	}
	for bv, hit := range vertexHit {
		if !hit {
			return fmt.Errorf("fibration: not epimorphic: base vertex %d has empty fibre", bv)
		}
	}
	edgeHit := make([]bool, b.M())
	for ei, bei := range f.EdgeMap {
		if bei < 0 || bei >= b.M() {
			return fmt.Errorf("fibration: edge %d maps to out-of-range base edge %d", ei, bei)
		}
		edgeHit[bei] = true
		e, be := g.Edge(ei), b.Edge(bei)
		if f.VertexMap[e.From] != be.From {
			return fmt.Errorf("fibration: edge %d: source %d maps to %d, want %d",
				ei, e.From, f.VertexMap[e.From], be.From)
		}
		if f.VertexMap[e.To] != be.To {
			return fmt.Errorf("fibration: edge %d: target %d maps to %d, want %d",
				ei, e.To, f.VertexMap[e.To], be.To)
		}
		if e.Port != be.Port {
			return fmt.Errorf("fibration: edge %d has port %d but its image has port %d",
				ei, e.Port, be.Port)
		}
	}
	for bei, hit := range edgeHit {
		if !hit {
			return fmt.Errorf("fibration: not epimorphic: base edge %d has no preimage", bei)
		}
	}
	// Unique lifting: per total vertex i and base edge e with
	// target(e) = φ(i), exactly one in-edge of i over e.
	for i := 0; i < g.N(); i++ {
		counts := make(map[int]int)
		for _, ei := range g.InEdges(i) {
			counts[f.EdgeMap[ei]]++
		}
		for _, bei := range b.InEdges(f.VertexMap[i]) {
			if counts[bei] != 1 {
				return fmt.Errorf("fibration: unique lifting fails: vertex %d has %d lifts of base edge %d, want 1",
					i, counts[bei], bei)
			}
		}
		// Every in-edge of i must sit over an in-edge of φ(i); the target
		// condition above already forces this, so counts has no strays.
	}
	return nil
}

// Fibre returns the fibre φ⁻¹(bv), sorted.
func (f *Fibration) Fibre(bv int) []int {
	var out []int
	for v, w := range f.VertexMap {
		if w == bv {
			out = append(out, v)
		}
	}
	return out
}

// FibreCardinalities returns |φ⁻¹(i)| for every base vertex i — the z
// vector whose recovery is the crux of §4.2.
func (f *Fibration) FibreCardinalities() []int {
	out := make([]int, f.Base.N())
	for _, w := range f.VertexMap {
		out[w]++
	}
	return out
}

// IsCovering reports whether the fibration is a covering: for every total
// vertex, out-edges are in bijection with the out-edges of its image. With
// output port awareness every fibration is a covering (§4.3).
func (f *Fibration) IsCovering() bool {
	for v := 0; v < f.Total.N(); v++ {
		counts := make(map[int]int)
		for _, ei := range f.Total.OutEdges(v) {
			counts[f.EdgeMap[ei]]++
		}
		outB := f.Base.OutEdges(f.VertexMap[v])
		if len(counts) != len(outB) {
			return false
		}
		for _, bei := range outB {
			if counts[bei] != 1 {
				return false
			}
		}
	}
	return true
}

// LiftValuation lifts a valuation of the base to the total graph fibrewise:
// (v^φ)_i = v_{φ(i)} (§3.1).
func LiftValuation[T any](f *Fibration, baseVals []T) []T {
	out := make([]T, f.Total.N())
	for v, w := range f.VertexMap {
		out[v] = baseVals[w]
	}
	return out
}

// Identity returns the identity fibration on g (every isomorphism is a
// fibration; the identity is the degenerate case).
func Identity(g *graph.Graph) *Fibration {
	vm := make([]int, g.N())
	em := make([]int, g.M())
	for i := range vm {
		vm[i] = i
	}
	for i := range em {
		em[i] = i
	}
	return &Fibration{Total: g, Base: g, VertexMap: vm, EdgeMap: em}
}
