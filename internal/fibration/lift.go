package fibration

import (
	"fmt"
	"math/rand"

	"anonnet/internal/graph"
)

// LiftCover constructs a k-fold covering of base: a total graph in which
// every fibre has cardinality k and out-edges are in bijection with base
// out-edges (ports included). Vertex (i, a) of the total graph is numbered
// i*k + a. Random per-edge rotations are drawn from rng and redrawn until
// the total graph is strongly connected (when the base is), up to maxTries.
//
// Coverings are the fibrations of the output-port-aware world (§4.3, where
// all fibres have equal cardinality — eq. (3)).
func LiftCover(base *graph.Graph, k int, rng *rand.Rand) (*Fibration, error) {
	if k < 1 {
		return nil, fmt.Errorf("fibration: LiftCover: fold %d, want ≥ 1", k)
	}
	const maxTries = 64
	var last *Fibration
	for try := 0; try < maxTries; try++ {
		total := graph.New(base.N() * k)
		edgeMap := make([]int, 0, base.M()*k)
		for bei := 0; bei < base.M(); bei++ {
			e := base.Edge(bei)
			shift := 0
			if e.From != e.To { // keep self-loops as honest self-loops
				shift = rng.Intn(k)
				if try == maxTries-1 {
					shift = 1 // deterministic fallback: a single rotation connects fibres
				}
			}
			for a := 0; a < k; a++ {
				src := e.From*k + (a+shift)%k
				dst := e.To*k + a
				total.AddPortEdge(src, dst, e.Port)
				edgeMap = append(edgeMap, bei)
			}
		}
		vm := make([]int, total.N())
		for v := range vm {
			vm[v] = v / k
		}
		last = &Fibration{Total: total, Base: base, VertexMap: vm, EdgeMap: edgeMap}
		if !base.StronglyConnected() || total.StronglyConnected() {
			return last, nil
		}
	}
	return last, fmt.Errorf("fibration: LiftCover: could not produce a strongly connected %d-fold cover", k)
}

// LiftFibred constructs a total graph fibred over base with prescribed
// fibre cardinalities z, such that all members of a fibre share the same
// outdegree — the setting of §4.2, where eq. (1)
// b_i·z_i = Σ_j d_{i,j}·z_j must hold with b_i integer. Vertex (i, a) is
// numbered offset(i) + a. Ports are dropped (only coverings preserve
// per-port structure). Random assignments are redrawn until the total graph
// is strongly connected (when the base is), up to maxTries.
func LiftFibred(base *graph.Graph, z []int, rng *rand.Rand) (*Fibration, error) {
	m := base.N()
	if len(z) != m {
		return nil, fmt.Errorf("fibration: LiftFibred: %d cardinalities for %d base vertices", len(z), m)
	}
	total := 0
	offset := make([]int, m)
	for i, zi := range z {
		if zi < 1 {
			return nil, fmt.Errorf("fibration: LiftFibred: fibre %d has cardinality %d, want ≥ 1", i, zi)
		}
		offset[i] = total
		total += zi
	}
	// Check eq. (1) divisibility: outgoing stubs of fibre i must split
	// evenly across its z_i members.
	for i := 0; i < m; i++ {
		stubs := 0
		for _, ei := range base.OutEdges(i) {
			stubs += z[base.Edge(ei).To]
		}
		if stubs%z[i] != 0 {
			return nil, fmt.Errorf("fibration: LiftFibred: fibre %d: %d outgoing stubs not divisible by cardinality %d (eq. (1) violated)",
				i, stubs, z[i])
		}
	}
	const maxTries = 64
	var last *Fibration
	for try := 0; try < maxTries; try++ {
		g := graph.New(total)
		edgeMap := make([]int, 0, total*4)
		// Round-robin source counters per base vertex, with random phase,
		// so every member of fibre i ends with outdegree b_i.
		next := make([]int, m)
		for i := range next {
			if try < maxTries-1 {
				next[i] = rng.Intn(z[i])
			}
		}
		selfSeen := make([]bool, m)
		for bei := 0; bei < base.M(); bei++ {
			e := base.Edge(bei)
			rotate := -1
			if e.From == e.To {
				if !selfSeen[e.From] {
					// The first base self-loop lifts to honest self-loops,
					// preserving the standing self-loop assumption (§2.1).
					selfSeen[e.From] = true
					rotate = 0
				} else if z[e.From] > 1 {
					// Parallel base self-loops lift to an intra-fibre
					// rotation, keeping multi-member fibres internally
					// connected.
					rotate = 1 + rng.Intn(z[e.From]-1)
				} else {
					rotate = 0
				}
			}
			for a := 0; a < z[e.To]; a++ {
				dst := offset[e.To] + a
				var src int
				if rotate >= 0 {
					src = offset[e.From] + (a+rotate)%z[e.From]
				} else {
					src = offset[e.From] + next[e.From]%z[e.From]
					next[e.From]++
				}
				g.AddEdge(src, dst)
				edgeMap = append(edgeMap, bei)
			}
		}
		vm := make([]int, total)
		for i := 0; i < m; i++ {
			for a := 0; a < z[i]; a++ {
				vm[offset[i]+a] = i
			}
		}
		last = &Fibration{Total: g, Base: stripPorts(base), VertexMap: vm, EdgeMap: edgeMap}
		if !base.StronglyConnected() || g.StronglyConnected() {
			return last, nil
		}
	}
	return last, fmt.Errorf("fibration: LiftFibred: could not produce a strongly connected lift")
}

func stripPorts(g *graph.Graph) *graph.Graph {
	h := graph.New(g.N())
	for _, e := range g.Edges() {
		h.AddEdge(e.From, e.To)
	}
	return h
}

// RingFibration returns the fibration R_n → R_p of §4.1 induced by
// i ↦ i mod p, for p dividing n, on unidirectional rings with self-loops
// (as built by graph.Ring). It is the engine of the impossibility proof:
// frequency-equivalent inputs on R_n and R_m both lift from R_p.
func RingFibration(n, p int) (*Fibration, error) {
	if p < 1 || n < p || n%p != 0 {
		return nil, fmt.Errorf("fibration: RingFibration(%d, %d): p must divide n", n, p)
	}
	total := graph.Ring(n)
	base := graph.Ring(p)
	vm := make([]int, n)
	for i := range vm {
		vm[i] = i % p
	}
	// graph.Ring appends each vertex's out-edges in the fixed order
	// (self-loop, successor), so mapping out-edges positionally gives the
	// fibration's edge component, including the degenerate p = 1 base with
	// two parallel self-loops.
	em := make([]int, total.M())
	for v := 0; v < n; v++ {
		outT := total.OutEdges(v)
		outB := base.OutEdges(vm[v])
		for k, ei := range outT {
			em[ei] = outB[k]
		}
	}
	return &Fibration{Total: total, Base: base, VertexMap: vm, EdgeMap: em}, nil
}

// LiftAny constructs a total graph fibred over base with the prescribed
// fibre cardinalities and no constraint on outdegrees: sources are assigned
// round-robin per base edge. This is only a valid construction for the
// simple-broadcast impossibility witnesses (where the lifting lemma needs
// no valuation preservation); the od model needs LiftFibred and the op
// model LiftCover. Random phases are redrawn until the total graph is
// strongly connected (when the base is), up to maxTries.
func LiftAny(base *graph.Graph, z []int, rng *rand.Rand) (*Fibration, error) {
	m := base.N()
	if len(z) != m {
		return nil, fmt.Errorf("fibration: LiftAny: %d cardinalities for %d base vertices", len(z), m)
	}
	total := 0
	offset := make([]int, m)
	for i, zi := range z {
		if zi < 1 {
			return nil, fmt.Errorf("fibration: LiftAny: fibre %d has cardinality %d, want ≥ 1", i, zi)
		}
		offset[i] = total
		total += zi
	}
	const maxTries = 64
	var last *Fibration
	for try := 0; try < maxTries; try++ {
		g := graph.New(total)
		edgeMap := make([]int, 0, total*4)
		next := make([]int, m)
		for i := range next {
			if try < maxTries-1 {
				next[i] = rng.Intn(z[i])
			}
		}
		selfSeen := make([]bool, m)
		for bei := 0; bei < base.M(); bei++ {
			e := base.Edge(bei)
			rotate := -1
			if e.From == e.To {
				if !selfSeen[e.From] {
					// The first base self-loop lifts to honest self-loops,
					// preserving the standing self-loop assumption (§2.1).
					selfSeen[e.From] = true
					rotate = 0
				} else if z[e.From] > 1 {
					// Parallel base self-loops lift to an intra-fibre
					// rotation, keeping multi-member fibres internally
					// connected.
					rotate = 1 + rng.Intn(z[e.From]-1)
				} else {
					rotate = 0
				}
			}
			for a := 0; a < z[e.To]; a++ {
				dst := offset[e.To] + a
				var src int
				if rotate >= 0 {
					src = offset[e.From] + (a+rotate)%z[e.From]
				} else {
					src = offset[e.From] + next[e.From]%z[e.From]
					next[e.From]++
				}
				g.AddEdge(src, dst)
				edgeMap = append(edgeMap, bei)
			}
		}
		vm := make([]int, total)
		for i := 0; i < m; i++ {
			for a := 0; a < z[i]; a++ {
				vm[offset[i]+a] = i
			}
		}
		last = &Fibration{Total: g, Base: stripPorts(base), VertexMap: vm, EdgeMap: edgeMap}
		if !base.StronglyConnected() || g.StronglyConnected() {
			return last, nil
		}
	}
	return last, fmt.Errorf("fibration: LiftAny: could not produce a strongly connected lift")
}
