package fibration

import (
	"fmt"
	"math/rand"
	"testing"

	"anonnet/internal/graph"
)

func TestIdentityIsFibration(t *testing.T) {
	g := graph.Ring(5)
	if err := Identity(g).Check(nil, nil); err != nil {
		t.Fatalf("identity fibration invalid: %v", err)
	}
}

func TestRingFibrationValid(t *testing.T) {
	for _, c := range []struct{ n, p int }{{6, 3}, {6, 2}, {12, 4}, {5, 5}, {4, 1}} {
		fib, err := RingFibration(c.n, c.p)
		if err != nil {
			t.Fatalf("RingFibration(%d,%d): %v", c.n, c.p, err)
		}
		if err := fib.Check(nil, nil); err != nil {
			t.Errorf("RingFibration(%d,%d) invalid: %v", c.n, c.p, err)
		}
		cards := fib.FibreCardinalities()
		for i, z := range cards {
			if z != c.n/c.p {
				t.Errorf("RingFibration(%d,%d): fibre %d has %d members, want %d", c.n, c.p, i, z, c.n/c.p)
			}
		}
		if !fib.IsCovering() {
			t.Errorf("RingFibration(%d,%d) is not a covering", c.n, c.p)
		}
	}
}

func TestRingFibrationRejectsNonDivisor(t *testing.T) {
	if _, err := RingFibration(7, 3); err == nil {
		t.Fatal("RingFibration(7,3) should fail")
	}
}

func TestMinimumBaseRing(t *testing.T) {
	// An unlabelled ring collapses to a single vertex (all agents look
	// alike): the minimum base is fibration prime with one vertex.
	fib, err := MinimumBase(graph.Ring(6), nil)
	if err != nil {
		t.Fatal(err)
	}
	if fib.Base.N() != 1 {
		t.Fatalf("minimum base of R_6 has %d vertices, want 1", fib.Base.N())
	}
	if err := fib.Check(nil, nil); err != nil {
		t.Fatalf("minimum base fibration invalid: %v", err)
	}
}

func TestMinimumBaseValuedRing(t *testing.T) {
	// Alternating values a,b,a,b,a,b on R_6: base is R_2 with values a,b.
	labels := []string{"a", "b", "a", "b", "a", "b"}
	fib, err := MinimumBase(graph.Ring(6), labels)
	if err != nil {
		t.Fatal(err)
	}
	if fib.Base.N() != 2 {
		t.Fatalf("base has %d vertices, want 2", fib.Base.N())
	}
	if err := fib.Check(labels, baseLabels(fib, labels)); err != nil {
		t.Fatalf("fibration invalid: %v", err)
	}
	cards := fib.FibreCardinalities()
	if cards[0] != 3 || cards[1] != 3 {
		t.Fatalf("fibre cardinalities %v, want [3 3]", cards)
	}
}

// baseLabels reads the induced base labelling off the fibration.
func baseLabels(f *Fibration, totalLabels []string) []string {
	out := make([]string, f.Base.N())
	for v, bv := range f.VertexMap {
		out[bv] = totalLabels[v]
	}
	return out
}

func TestMinimumBaseAsymmetricValues(t *testing.T) {
	// With all-distinct values nothing collapses: the graph is its own
	// minimum base.
	g := graph.Ring(5)
	labels := []string{"a", "b", "c", "d", "e"}
	fib, err := MinimumBase(g, labels)
	if err != nil {
		t.Fatal(err)
	}
	if fib.Base.N() != 5 {
		t.Fatalf("base has %d vertices, want 5", fib.Base.N())
	}
	prime, err := IsPrime(g, labels)
	if err != nil || !prime {
		t.Fatalf("IsPrime = %t, %v; want true", prime, err)
	}
}

func TestMinimumBaseStar(t *testing.T) {
	// Star with identical leaves: base has 2 vertices (center, leaf
	// class).
	g := graph.Star(6)
	fib, err := MinimumBase(g, []string{"c", "l", "l", "l", "l", "l"})
	if err != nil {
		t.Fatal(err)
	}
	if fib.Base.N() != 2 {
		t.Fatalf("base of star has %d vertices, want 2", fib.Base.N())
	}
	cards := fib.FibreCardinalities()
	if cards[0]+cards[1] != 6 || (cards[0] != 1 && cards[1] != 1) {
		t.Fatalf("fibre cardinalities %v, want {1, 5}", cards)
	}
}

func TestMinimumBaseHypercube(t *testing.T) {
	// Unlabelled hypercube is vertex-transitive: base is a single vertex
	// with d+1 self-loops (degree preserved as in-edge count).
	fib, err := MinimumBase(graph.Hypercube(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if fib.Base.N() != 1 {
		t.Fatalf("base has %d vertices, want 1", fib.Base.N())
	}
	if fib.Base.M() != 4 {
		t.Fatalf("base has %d edges, want 4 (3 dimensions + self-loop)", fib.Base.M())
	}
}

func TestMinimumBaseDeBruijn(t *testing.T) {
	// B(2, 3) fibres over B(2, 2) and further down to B(2, 0) (one
	// vertex): the unlabelled minimum base is a single vertex with 2
	// self-loops... plus the added self-loops make in-views equal, so all
	// 8 vertices collapse.
	fib, err := MinimumBase(graph.DeBruijn(2, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fib.Check(nil, nil); err != nil {
		t.Fatalf("invalid fibration: %v", err)
	}
	if fib.Base.N() >= 8 {
		t.Fatalf("de Bruijn base should be smaller than the graph, got %d vertices", fib.Base.N())
	}
}

func TestMinimumBaseIsPrime(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	graphs := []*graph.Graph{
		graph.Ring(6), graph.Star(5), graph.Hypercube(2),
		graph.BidirectionalRing(8), graph.Torus(2, 3),
		graph.RandomStronglyConnected(9, 7, rng),
	}
	for i, g := range graphs {
		fib, err := MinimumBase(g, nil)
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		if err := fib.Check(nil, nil); err != nil {
			t.Fatalf("graph %d: invalid fibration: %v", i, err)
		}
		prime, err := IsPrime(fib.Base, nil)
		if err != nil {
			t.Fatalf("graph %d: IsPrime: %v", i, err)
		}
		if !prime {
			t.Errorf("graph %d: minimum base is not fibration prime: %v", i, fib.Base)
		}
	}
}

func TestLiftCoverRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bases := []*graph.Graph{
		graph.Ring(3),
		graph.Star(4).AssignPorts(),
		graph.RandomStronglyConnected(5, 4, rng),
	}
	for bi, base := range bases {
		for _, k := range []int{2, 3} {
			fib, err := LiftCover(base, k, rng)
			if err != nil {
				t.Fatalf("base %d fold %d: %v", bi, k, err)
			}
			if err := fib.Check(nil, nil); err != nil {
				t.Fatalf("base %d fold %d: invalid: %v", bi, k, err)
			}
			if !fib.IsCovering() {
				t.Errorf("base %d fold %d: not a covering", bi, k)
			}
			for _, z := range fib.FibreCardinalities() {
				if z != k {
					t.Errorf("base %d fold %d: fibre size %d", bi, k, z)
				}
			}
			if !fib.Total.StronglyConnected() {
				t.Errorf("base %d fold %d: lift not strongly connected", bi, k)
			}
		}
	}
}

func TestLiftFibredRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Base: star-like multigraph satisfying eq. (1) with z = (1, 3):
	// center (vertex 0) with self-loop and 3 edges to/from the leaf class.
	base := graph.New(2)
	base.AddEdge(0, 0)
	base.AddEdge(0, 1)
	base.AddEdge(1, 0)
	base.AddEdge(1, 0)
	base.AddEdge(1, 0)
	base.AddEdge(1, 1)
	// Check eq. (1) by hand: out-stubs of 0 = z0·1 + z1·1 = 1+3 = 4 = b0·z0
	// with b0 = 4; out-stubs of 1 = 3·z0 + z1 = 3+3 = 6 = b1·z1 with b1 = 2.
	fib, err := LiftFibred(base, []int{1, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := fib.Check(nil, nil); err != nil {
		t.Fatalf("invalid fibration: %v", err)
	}
	cards := fib.FibreCardinalities()
	if cards[0] != 1 || cards[1] != 3 {
		t.Fatalf("cardinalities %v, want [1 3]", cards)
	}
	// Outdegrees uniform per fibre.
	for v := 0; v < fib.Total.N(); v++ {
		want := 4
		if fib.VertexMap[v] == 1 {
			want = 2
		}
		if got := fib.Total.OutDegree(v); got != want {
			t.Errorf("vertex %d outdegree %d, want %d", v, got, want)
		}
	}
}

func TestLiftFibredRejectsBadCardinalities(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := graph.Ring(2)
	if _, err := LiftFibred(base, []int{2, 3}, rng); err == nil {
		t.Fatal("LiftFibred should reject cardinalities violating eq. (1)")
	}
}

func TestLiftAnyArbitraryCardinalities(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// A second self-loop at vertex 1 lets its 3-member fibre be internally
	// connected (a single base self-loop must lift to honest self-loops).
	base := graph.Ring(2)
	base.AddEdge(1, 1)
	fib, err := LiftAny(base, []int{1, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := fib.Check(nil, nil); err != nil {
		t.Fatalf("invalid fibration: %v", err)
	}
	cards := fib.FibreCardinalities()
	if cards[0] != 1 || cards[1] != 3 {
		t.Fatalf("cardinalities %v, want [1 3]", cards)
	}
}

func TestMinimumBaseOfLiftMatchesBase(t *testing.T) {
	// The minimum base of a lift of a prime base is the base itself (up to
	// isomorphism), when the lift's valuation (here: none) doesn't split
	// further. Use a prime base: a ring with distinct structure via an
	// extra chord.
	rng := rand.New(rand.NewSource(21))
	base := graph.Ring(3)
	labels := []string{"a", "b", "c"}
	fib, err := LiftCover(base, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	lifted := LiftValuation(fib, labels)
	mb, err := MinimumBase(fib.Total, lifted)
	if err != nil {
		t.Fatal(err)
	}
	if mb.Base.N() != 3 {
		t.Fatalf("minimum base of labelled 3-fold cover has %d vertices, want 3", mb.Base.N())
	}
	if !graph.Isomorphic(mb.Base, base, baseLabels(mb, lifted), labels) {
		t.Fatalf("minimum base %v not isomorphic to original base %v", mb.Base, base)
	}
}

func TestLiftValuation(t *testing.T) {
	fib, err := RingFibration(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	vals := LiftValuation(fib, []string{"x", "y"})
	want := []string{"x", "y", "x", "y", "x", "y"}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("LiftValuation = %v, want %v", vals, want)
		}
	}
}

func TestCheckCatchesBrokenFibration(t *testing.T) {
	fib, err := RingFibration(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the vertex map.
	fib.VertexMap[0] = (fib.VertexMap[0] + 1) % 3
	if err := fib.Check(nil, nil); err == nil {
		t.Fatal("Check accepted a corrupted fibration")
	}
}

func TestQuickLiftedCoversAreFibrations(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5)
		base := graph.RandomStronglyConnected(n, rng.Intn(2*n), rng)
		k := 1 + rng.Intn(3)
		fib, err := LiftCover(base, k, rng)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := fib.Check(nil, nil); err != nil {
			t.Fatalf("trial %d (n=%d, k=%d): %v", trial, n, k, err)
		}
		// And the minimum base of the lift must not be larger than the
		// base.
		mb, err := MinimumBase(fib.Total, nil)
		if err != nil {
			t.Fatalf("trial %d: MinimumBase: %v", trial, err)
		}
		if mb.Base.N() > base.N() {
			t.Fatalf("trial %d: minimum base larger (%d) than cover base (%d)", trial, mb.Base.N(), base.N())
		}
	}
}

func ExampleMinimumBase() {
	// The 6-ring with alternating values collapses onto the 2-ring.
	fib, _ := MinimumBase(graph.Ring(6), []string{"a", "b", "a", "b", "a", "b"})
	fmt.Println(fib.Base.N(), fib.FibreCardinalities())
	// Output: 2 [3 3]
}
